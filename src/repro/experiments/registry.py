"""The scenario registry: every benchmark, declared as data.

Each entry below replaces a hand-rolled ``benchmarks/bench_*.py`` sweep
loop (the scripts are now thin wrappers over this registry) or adds a cell
of the new workload matrix — the five graph families from
``repro.graph.generators`` (power-law, 2D grid/torus, planted-community,
disconnected multi-component, dense near-clique) run across the
heterogeneous, sublinear, near-linear and superlinear regimes.

Seeding convention: scenarios that migrated from a ``bench_*.py`` script
keep that script's internal per-point seeds so the published tables stay
comparable (exception: ``theorem31_superlinear_mst``'s old seed used the
process-salted ``hash()`` and was replaced with a stable per-point seed);
new scenarios use the Runner-provided per-point RNG.
"""

from __future__ import annotations

import functools
import math
import random

from ..analysis import predicted_rounds
from ..baselines import (
    sublinear_boruvka_mst,
    sublinear_connectivity,
    sublinear_matching,
)
from ..core import (
    approximate_mst_weight,
    approximate_weighted_mincut,
    build_apsp_oracle,
    exact_unweighted_mincut,
    filtering_matching,
    heterogeneous_coloring,
    heterogeneous_connectivity,
    heterogeneous_matching,
    heterogeneous_mis,
    heterogeneous_mst,
    heterogeneous_spanner,
    low_degree_phase_rounds,
    modified_baswana_sen_local,
    planned_boruvka_steps,
    prefix_thresholds,
    solve_one_vs_two_cycles,
)
from ..graph import generators
from ..graph.traversal import bfs_distances, component_labels
from ..graph.validation import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_coloring,
    spanner_stretch,
    verify_mst,
)
from ..local.baswana_sen import baswana_sen
from ..local.mincut import min_cut_value
from ..local.mst import f_light_edges, kruskal, kruskal_edges
from ..mpc import Cluster, ModelConfig
from ..primitives.broadcast import broadcast
from ..primitives.disseminate import disseminate, holders_by_key
from ..primitives.edgestore import EdgeStore
from ..primitives.sort import sample_sort
from ..sketches import GraphSketchSpec, VertexSketch, components_from_sketches
from .scenario import Scenario, regime_config

__all__ = ["SCENARIOS", "all_scenarios", "get_scenario", "scenario_names"]

SCENARIOS: dict[str, Scenario] = {}


def _register(scenario: Scenario) -> Scenario:
    if scenario.name in SCENARIOS:
        raise ValueError(f"duplicate scenario {scenario.name!r}")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; run `python -m repro bench --list`"
        ) from None


def all_scenarios() -> list[Scenario]:
    return list(SCENARIOS.values())


def scenario_names() -> list[str]:
    return list(SCENARIOS)


# ----------------------------------------------------------------------
# Table 1 rows
# ----------------------------------------------------------------------

def _measure_table1_connectivity(n: int, rng: random.Random, quick: bool) -> dict:
    local = random.Random(n)
    graph = generators.planted_components_graph(n, 4, 2 * n, local)
    truth = component_labels(graph)
    het = heterogeneous_connectivity(graph, rng=random.Random(n + 1))
    assert het.labels == truth
    sub = sublinear_connectivity(graph, rng=random.Random(n + 2))
    assert sub.labels == truth
    return {
        "n": n,
        "m": graph.m,
        "het_rounds": het.rounds,
        "sub_rounds": sub.rounds,
        "theory_het": "O(1)",
        "theory_sub": "~log n",
        "_ledgers": {"het": het.cluster.ledger, "sub": sub.cluster.ledger},
    }


def _check_table1_connectivity(rows) -> None:
    het_rounds = [row["het_rounds"] for row in rows]
    assert max(het_rounds) <= 8  # constant across the sweep
    assert rows[-1]["sub_rounds"] > max(het_rounds)


_register(Scenario(
    name="table1_connectivity",
    title="Table 1 / Connectivity: heterogeneous O(1) vs sublinear Borůvka",
    group="table1",
    problem="connectivity",
    graph_family="planted_components",
    regimes=("heterogeneous", "sublinear"),
    axis="n",
    points=(32, 64, 128),
    quick_points=(24, 48),
    measure=_measure_table1_connectivity,
    columns=("n", "m", "het_rounds", "sub_rounds", "theory_het", "theory_sub"),
    check=_check_table1_connectivity,
    paper_ref="Theorem C.1 vs [11]",
))


def _measure_table1_mst(ratio: int, rng: random.Random, quick: bool) -> dict:
    n = 48 if quick else 96
    local = random.Random(ratio)
    m = min(n * (n - 1) // 2, n * ratio)
    graph = generators.random_connected_graph(n, m, local).with_unique_weights(local)
    het = heterogeneous_mst(graph, rng=random.Random(ratio + 1))
    assert verify_mst(graph, het.edges)
    sub = sublinear_boruvka_mst(graph, rng=random.Random(ratio + 2))
    assert verify_mst(graph, sub.edges)
    return {
        "m/n": ratio,
        "het_steps": het.boruvka_steps,
        "het_rounds": het.rounds,
        "sub_iters": sub.iterations,
        "sub_rounds": sub.rounds,
        "theory_het~loglog(m/n)": predicted_rounds("mst", "heterogeneous", n=n, m=m),
        "theory_sub~log(n)": predicted_rounds("mst", "sublinear", n=n, m=m),
        "_ledgers": {"het": het.cluster.ledger, "sub": sub.cluster.ledger},
    }


def _check_table1_mst(rows) -> None:
    steps = [row["het_steps"] for row in rows]
    assert steps == sorted(steps)  # the log log curve
    assert steps[-1] <= 4
    assert rows[-1]["sub_rounds"] > 0


_register(Scenario(
    name="table1_mst",
    title="Table 1 / MST: heterogeneous O(log log(m/n)) vs sublinear O(log n)",
    group="table1",
    problem="mst",
    graph_family="random_connected",
    regimes=("heterogeneous", "sublinear"),
    axis="m/n",
    points=(2, 8, 32, 64),
    quick_points=(2, 8),
    measure=_measure_table1_mst,
    columns=("m/n", "het_steps", "het_rounds", "sub_iters", "sub_rounds",
             "theory_het~loglog(m/n)", "theory_sub~log(n)"),
    check=_check_table1_mst,
    paper_ref="Theorem 1.2 / Theorem 3.1",
))


def _measure_table1_mst_approx(epsilon: float, rng: random.Random, quick: bool) -> dict:
    local = random.Random(17)
    graph = generators.random_connected_graph(48, 220, local).with_unique_weights(local)
    truth = sum(e[2] for e in kruskal(graph))
    result = approximate_mst_weight(
        graph, epsilon=epsilon, rng=random.Random(int(epsilon * 100)), copies=2
    )
    return {
        "epsilon": epsilon,
        "true_mst": truth,
        "estimate": result.estimate,
        "ratio": result.estimate / truth,
        "thresholds": len(result.thresholds),
        "rounds": result.rounds,
        "theory": "O(1)",
        "_ledgers": {"": result.cluster.ledger},
    }


def _check_table1_mst_approx(rows) -> None:
    for row in rows:
        assert 1.0 <= row["ratio"] <= 1.0 + row["epsilon"] + 0.4
        assert row["rounds"] <= 8


_register(Scenario(
    name="table1_mst_approx",
    title="Table 1 / (1+eps)-approx MST: O(1) rounds, estimate within band",
    group="table1",
    problem="mst_approx",
    graph_family="random_connected",
    regimes=("heterogeneous",),
    axis="epsilon",
    points=(1.0, 0.5, 0.25),
    quick_points=(1.0, 0.5),
    measure=_measure_table1_mst_approx,
    columns=("epsilon", "true_mst", "estimate", "ratio", "thresholds",
             "rounds", "theory"),
    check=_check_table1_mst_approx,
    paper_ref="Table 1 via [1] (AGM sketch thresholds)",
))


def _measure_table1_spanner(k: int, rng: random.Random, quick: bool) -> dict:
    n, m = (40, 500) if quick else (64, 1400)
    graph = generators.gnm_random_graph(n, m, random.Random(23))
    result = heterogeneous_spanner(graph, k=k, rng=random.Random(k))
    stretch = spanner_stretch(graph, result.edges)
    return {
        "k": k,
        "stretch_bound=6k-1": result.stretch_bound,
        "stretch_measured": stretch,
        "size": result.size,
        "size_budget~n^(1+1/k)": round(6 * n ** (1 + 1 / k)),
        "m": graph.m,
        "rounds": result.rounds,
        "_ledgers": {"": result.cluster.ledger},
    }


def _check_table1_spanner(rows) -> None:
    for row in rows:
        assert row["stretch_measured"] <= row["stretch_bound=6k-1"]
        assert row["rounds"] <= 220  # constant-round construction
    sizes = [row["size"] for row in rows]
    assert sizes[-1] <= sizes[0]  # size shrinks (weakly) as k grows


_register(Scenario(
    name="table1_spanner",
    title="Table 1 / O(k)-spanner: O(1) rounds, size O(n^{1+1/k}), "
          "stretch <= 6k-1",
    group="table1",
    problem="spanner",
    graph_family="gnm",
    regimes=("heterogeneous",),
    axis="k",
    points=(1, 2, 3, 4),
    quick_points=(1, 2),
    measure=_measure_table1_spanner,
    columns=("k", "stretch_bound=6k-1", "stretch_measured", "size",
             "size_budget~n^(1+1/k)", "m", "rounds"),
    check=_check_table1_spanner,
    paper_ref="Theorem 1.3 / Section 4",
))


def _measure_table1_matching(density: int, rng: random.Random, quick: bool) -> dict:
    n = 40 if quick else 80
    local = random.Random(density)
    m = min(n * (n - 1) // 2, n * density)
    graph = generators.random_connected_graph(n, m, local)
    het = heterogeneous_matching(graph, rng=random.Random(density + 1))
    assert is_maximal_matching(graph, het.matching)
    sub = sublinear_matching(graph, rng=random.Random(density + 2))
    assert is_maximal_matching(graph, sub.matching)
    return {
        "avg_degree": round(graph.average_degree, 1),
        "het_rounds": het.rounds,
        "phase1_iters": het.phase1_iterations,
        "gu_charge": round(low_degree_phase_rounds(graph.max_degree), 1),
        "sub_rounds": sub.rounds,
        "theory_het~sqrt": predicted_rounds("matching", "heterogeneous", n=n, m=m),
        "_ledgers": {"het": het.cluster.ledger, "sub": sub.cluster.ledger},
    }


def _check_table1_matching(rows) -> None:
    het = [row["het_rounds"] for row in rows]
    assert het[-1] <= 3 * het[0]  # sqrt-log growth, never linear


_register(Scenario(
    name="table1_matching",
    title="Table 1 / maximal matching: O(sqrt(log d log log d)) heterogeneous",
    group="table1",
    problem="matching",
    graph_family="random_connected",
    regimes=("heterogeneous", "sublinear"),
    axis="m/n",
    points=(2, 8, 24),
    quick_points=(2, 8),
    measure=_measure_table1_matching,
    columns=("avg_degree", "het_rounds", "phase1_iters", "gu_charge",
             "sub_rounds", "theory_het~sqrt"),
    check=_check_table1_matching,
    paper_ref="Theorem 5.1",
))


def _measure_table1_mis(density: int, rng: random.Random, quick: bool) -> dict:
    n = 48 if quick else 90
    local = random.Random(density)
    m = min(n * (n - 1) // 2, n * density)
    graph = generators.random_connected_graph(n, m, local)
    result = heterogeneous_mis(graph, rng=random.Random(density + 1))
    assert is_maximal_independent_set(graph, result.vertices)
    return {
        "n": n,
        "max_degree": graph.max_degree,
        "mis_size": result.size,
        "iterations": result.iterations,
        "theory_iters~loglogΔ": len(prefix_thresholds(n, graph.max_degree)),
        "rounds": result.rounds,
        "_ledgers": {"": result.cluster.ledger},
    }


def _check_table1_mis(rows) -> None:
    iterations = [row["iterations"] for row in rows]
    # log log growth: quadrupling the degree adds at most a few iterations.
    assert iterations[-1] <= iterations[0] + 4


_register(Scenario(
    name="table1_mis",
    title="Table 1 / MIS: O(log log Δ) iterations of O(1) rounds each",
    group="table1",
    problem="mis",
    graph_family="random_connected",
    regimes=("heterogeneous",),
    axis="m/n",
    points=(3, 10, 30),
    quick_points=(3, 10),
    measure=_measure_table1_mis,
    columns=("n", "max_degree", "mis_size", "iterations",
             "theory_iters~loglogΔ", "rounds"),
    check=_check_table1_mis,
    paper_ref="Theorem C.6 via [26]",
))


def _measure_table1_coloring(n: int, rng: random.Random, quick: bool) -> dict:
    local = random.Random(n)
    graph = generators.random_connected_graph(n, 6 * n, local)
    result = heterogeneous_coloring(graph, rng=random.Random(n + 1))
    assert is_proper_coloring(graph, result.colors, result.num_colors_allowed)
    return {
        "n": n,
        "m": graph.m,
        "delta+1": result.num_colors_allowed,
        "colors_used": len(set(result.colors)),
        "conflict_edges": result.conflict_edges,
        "attempts": result.attempts,
        "rounds": result.rounds,
        "theory": "O(1)",
        "_ledgers": {"": result.cluster.ledger},
    }


def _check_table1_coloring(rows) -> None:
    assert all(row["rounds"] <= 30 for row in rows)
    assert all(row["colors_used"] <= row["delta+1"] for row in rows)


_register(Scenario(
    name="table1_coloring",
    title="Table 1 / (Δ+1)-coloring: O(1) rounds via palette sparsification",
    group="table1",
    problem="coloring",
    graph_family="random_connected",
    regimes=("heterogeneous",),
    axis="n",
    points=(40, 80, 120),
    quick_points=(32, 48),
    measure=_measure_table1_coloring,
    columns=("n", "m", "delta+1", "colors_used", "conflict_edges",
             "attempts", "rounds", "theory"),
    check=_check_table1_coloring,
    paper_ref="Theorem C.7 via [6]",
))


def _measure_table1_mincut(cut: int, rng: random.Random, quick: bool) -> dict:
    n = 30 if quick else 40
    local = random.Random(cut)
    graph = generators.planted_cut_graph(n, cut, 4.0, local)
    truth = min_cut_value(graph.n, graph.edges)
    exact = exact_unweighted_mincut(graph, rng=random.Random(cut + 1), attempts=14)
    weighted = graph.with_unique_weights(local)
    wtruth = min_cut_value(weighted.n, weighted.edges)
    approx = approximate_weighted_mincut(
        weighted, epsilon=0.4, rng=random.Random(cut + 2)
    )
    return {
        "planted_cut": cut,
        "true_cut": truth,
        "exact_value": exact.value,
        "exact_rounds": exact.rounds,
        "w_true": wtruth,
        "w_estimate": approx.value,
        "w_ratio": approx.value / wtruth,
        "w_rounds": approx.rounds,
        "_ledgers": {"exact": exact.cluster.ledger, "w": approx.cluster.ledger},
    }


def _check_table1_mincut(rows) -> None:
    for row in rows:
        assert row["exact_value"] == row["true_cut"]
        assert 0.55 <= row["w_ratio"] <= 1.45
        assert row["w_rounds"] <= 12


_register(Scenario(
    name="table1_mincut",
    title="Table 1 / min-cut: exact unweighted O(1) + (1±eps) weighted O(1)",
    group="table1",
    problem="mincut",
    graph_family="planted_cut",
    regimes=("heterogeneous",),
    axis="planted_cut",
    points=(2, 4, 6),
    quick_points=(2, 4),
    measure=_measure_table1_mincut,
    columns=("planted_cut", "true_cut", "exact_value", "exact_rounds",
             "w_true", "w_estimate", "w_ratio", "w_rounds"),
    check=_check_table1_mincut,
    paper_ref="Theorems C.3 / C.4",
))


# ----------------------------------------------------------------------
# Figures and per-theorem experiments
# ----------------------------------------------------------------------

@functools.lru_cache(maxsize=None)
def _fig1_setup(n: int, m: int, k: int):
    """The fixed-seed graph and classic Baswana–Sen reference, shared by
    every sweep point of ``fig1_baswana_sen``."""
    graph = generators.gnm_random_graph(n, m, random.Random(31))
    return graph, baswana_sen(graph, k, random.Random(0))


def _measure_fig1(p, rng: random.Random, quick: bool) -> dict:
    n, k, m = (40, 2, 400) if quick else (70, 2, 1500)
    trials = 2 if quick else 5
    graph, classic = _fig1_setup(n, m, k)
    edges = [(e[0], e[1]) for e in graph.edges]
    if p == "classic":
        return {
            "p": "classic",
            "recluster": len(classic.reclustered_edges),
            "removal": len(classic.removal_edges),
            "size": classic.size,
            "blowup_vs_classic": 1.0,
            "stretch": spanner_stretch(graph, classic.spanner),
        }
    sizes, reclusters, removals = [], [], []
    for seed in range(trials):
        result = modified_baswana_sen_local(n, edges, k, p, random.Random(seed))
        sizes.append(len(result["spanner"]))
        reclusters.append(len(result["recluster_edges"]))
        removals.append(len(result["removal_edges"]))
    stretch = spanner_stretch(
        graph, modified_baswana_sen_local(n, edges, k, p, random.Random(99))["spanner"]
    )
    return {
        "p": p,
        "recluster": sum(reclusters) / trials,
        "removal": sum(removals) / trials,
        "size": sum(sizes) / trials,
        "blowup_vs_classic": (sum(sizes) / trials) / classic.size,
        "stretch": stretch,
    }


def _check_fig1(rows) -> None:
    sampled = rows[1:]
    # Re-cluster edges shrink and removal edges grow as p decreases.
    assert sampled[-1]["recluster"] <= sampled[0]["recluster"]
    assert sampled[-1]["removal"] >= sampled[0]["removal"]
    # Stretch bound (2k-1 = 3) holds at every p.
    assert all(row["stretch"] <= 3.0 for row in rows)
    # Blow-up stays far below the worst-case 1/p envelope.
    assert sampled[-1]["blowup_vs_classic"] <= 1.0 / 0.1


_register(Scenario(
    name="fig1_baswana_sen",
    title="Figure 1 / Lemma 4.3: smaller p => fewer re-clusterings, more "
          "removal edges, ~1/p size blow-up, stretch still 2k-1",
    group="figure",
    problem="spanner",
    graph_family="gnm",
    regimes=("heterogeneous",),
    axis="p",
    points=("classic", 1.0, 0.5, 0.25, 0.1),
    quick_points=("classic", 1.0, 0.25),
    measure=_measure_fig1,
    columns=("p", "recluster", "removal", "size", "blowup_vs_classic",
             "stretch"),
    check=_check_fig1,
    paper_ref="Figure 1 / Lemma 4.3",
))


def _measure_corollary42(n: int, rng: random.Random, quick: bool) -> dict:
    graph = generators.random_connected_graph(n, 5 * n, random.Random(n))
    oracle = build_apsp_oracle(graph, rng=random.Random(n + 1))
    worst = 1.0
    total_ratio = 0.0
    pairs = 0
    for source in range(0, n, max(1, n // 10)):
        truth = bfs_distances(graph, source)
        approx = oracle.distances_from(source)
        for v in range(n):
            if truth[v] > 0 and not math.isinf(truth[v]):
                ratio = approx[v] / truth[v]
                worst = max(worst, ratio)
                total_ratio += ratio
                pairs += 1
    return {
        "n": n,
        "spanner_size": oracle.spanner.size,
        "m": graph.m,
        "k": oracle.spanner.k,
        "stretch_bound": oracle.stretch_bound,
        "worst_stretch": worst,
        "mean_stretch": total_ratio / pairs,
        "rounds": oracle.rounds,
    }


def _check_corollary42(rows) -> None:
    for row in rows:
        assert row["worst_stretch"] <= row["stretch_bound"]
        assert row["spanner_size"] <= row["m"]


_register(Scenario(
    name="corollary42_apsp",
    title="Corollary 4.2: O(log n)-approx APSP from an O~(n)-size spanner",
    group="theorem",
    problem="spanner",
    graph_family="random_connected",
    regimes=("heterogeneous",),
    axis="n",
    points=(40, 80),
    quick_points=(30,),
    measure=_measure_corollary42,
    columns=("n", "spanner_size", "m", "k", "stretch_bound", "worst_stretch",
             "mean_stretch", "rounds"),
    check=_check_corollary42,
    paper_ref="Corollary 4.2",
))


def _measure_cycle(n: int, rng: random.Random, quick: bool) -> dict:
    local = random.Random(n)
    graph, truth = generators.one_or_two_cycles(n, local)
    het = solve_one_vs_two_cycles(graph, rng=random.Random(n + 1))
    assert het.num_cycles == truth
    sub = sublinear_connectivity(graph, rng=random.Random(n + 2))
    assert len(set(sub.labels)) == truth
    return {
        "n": n,
        "true_cycles": truth,
        "het_rounds": het.rounds,
        "sub_rounds": sub.rounds,
        "theory_sub~log n": round(math.log2(n), 1),
        "_ledgers": {"het": het.cluster.ledger, "sub": sub.cluster.ledger},
    }


def _check_cycle(rows) -> None:
    assert all(row["het_rounds"] == 1 for row in rows)
    sub_rounds = [row["sub_rounds"] for row in rows]
    assert sub_rounds[-1] > sub_rounds[0]  # grows with n


_register(Scenario(
    name="cycle_problem",
    title="1-vs-2 cycles: trivial (1 round) with one near-linear machine",
    group="theorem",
    problem="cycle",
    graph_family="cycles",
    regimes=("heterogeneous", "sublinear"),
    axis="n",
    points=(32, 64, 128, 256),
    quick_points=(32, 64),
    measure=_measure_cycle,
    columns=("n", "true_cycles", "het_rounds", "sub_rounds",
             "theory_sub~log n"),
    check=_check_cycle,
    paper_ref="Section 1 (the 1-vs-2 cycle problem)",
))


def _measure_theorem31(f, rng: random.Random, quick: bool) -> dict:
    n, m = (48, 700) if quick else (90, 2700)
    local = random.Random(37)
    graph = generators.random_connected_graph(n, m, local).with_unique_weights(local)
    if f is None:
        config = ModelConfig.heterogeneous(n=n, m=m)
        label = "1/log n"
    else:
        config = ModelConfig.heterogeneous_superlinear(n=n, m=m, f=f)
        label = f
    seed = 3100 + round((f or 0.0) * 100)
    result = heterogeneous_mst(graph, config=config, rng=random.Random(seed))
    assert verify_mst(graph, result.edges)
    return {
        "f": label,
        "planned_steps": planned_boruvka_steps(n, m, config.f),
        "measured_steps": result.boruvka_steps,
        "rounds": result.rounds,
        "theory~log(log(m/n)/(f log n))": predicted_rounds(
            "mst", "heterogeneous", n=n, m=m, f=config.f
        ),
        "_ledgers": {"": result.cluster.ledger},
    }


def _check_theorem31(rows) -> None:
    steps = [row["measured_steps"] for row in rows]
    assert steps == sorted(steps, reverse=True)
    assert steps[-1] == 0  # f = 1: pure sampling, O(1) rounds


_register(Scenario(
    name="theorem31_superlinear_mst",
    title="Theorem 3.1: larger large-machine memory (f) => fewer Borůvka steps",
    group="theorem",
    problem="mst",
    graph_family="random_connected",
    regimes=("heterogeneous", "superlinear"),
    axis="f",
    points=(None, 0.25, 0.5, 1.0),  # None = near-linear (f = 1/log n)
    quick_points=(None, 1.0),
    measure=_measure_theorem31,
    columns=("f", "planned_steps", "measured_steps", "rounds",
             "theory~log(log(m/n)/(f log n))"),
    check=_check_theorem31,
    paper_ref="Theorem 3.1",
))


def _measure_theorem55(f: float, rng: random.Random, quick: bool) -> dict:
    n, m = (40, 600) if quick else (70, 2000)
    graph = generators.random_connected_graph(n, m, random.Random(41))
    config = ModelConfig.heterogeneous_superlinear(n=n, m=m, f=f)
    result = filtering_matching(graph, config=config, rng=random.Random(int(f * 10)))
    assert is_maximal_matching(graph, result.matching)
    return {
        "f": f,
        "levels": result.levels,
        "rounds": result.rounds,
        "theory~1/f": math.ceil(1.0 / f),
        "_ledgers": {"": result.cluster.ledger},
    }


def _check_theorem55(rows) -> None:
    levels = [row["levels"] for row in rows]
    assert levels == sorted(levels, reverse=True)
    rounds = [row["rounds"] for row in rows]
    assert rounds == sorted(rounds, reverse=True)


_register(Scenario(
    name="theorem55_filtering",
    title="Theorem 5.5: filtering matching, recursion depth ~ 1/f",
    group="theorem",
    problem="matching",
    graph_family="random_connected",
    regimes=("superlinear",),
    axis="f",
    points=(0.25, 0.5, 1.0),
    quick_points=(0.5, 1.0),
    measure=_measure_theorem55,
    columns=("f", "levels", "rounds", "theory~1/f"),
    check=_check_theorem55,
    paper_ref="Theorem 5.5",
))


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------

def _measure_ablation_gamma(gamma: float, rng: random.Random, quick: bool) -> dict:
    n, m = (48, 600) if quick else (100, 2000)
    local = random.Random(59)
    graph = generators.random_connected_graph(n, m, local).with_unique_weights(local)
    config = ModelConfig.heterogeneous(n=n, m=m, gamma=gamma)
    cluster = Cluster(config, rng=random.Random(int(gamma * 100)))
    store = EdgeStore.create(cluster, graph.edges)

    before = cluster.ledger.rounds
    store.sort(key=lambda e: e[2])
    sort_rounds = cluster.ledger.rounds - before

    before = cluster.ledger.rounds
    store.aggregate(lambda e: (e[0], 1), "sum")
    aggregate_rounds = cluster.ledger.rounds - before

    before = cluster.ledger.rounds
    store.annotate({v: v for v in range(n)})
    annotate_rounds = cluster.ledger.rounds - before

    return {
        "gamma": gamma,
        "machines": config.num_small,
        "capacity": config.small_capacity,
        "fanout": config.tree_fanout,
        "sort_rounds": sort_rounds,
        "aggregate_rounds": aggregate_rounds,
        "annotate_rounds": annotate_rounds,
        "_ledgers": {"": cluster.ledger},
    }


def _check_ablation_gamma(rows) -> None:
    machines = [row["machines"] for row in rows]
    assert machines == sorted(machines, reverse=True)  # fewer, fatter machines
    # Deeper trees at small gamma: aggregation cannot get cheaper as gamma
    # shrinks.
    assert rows[0]["aggregate_rounds"] >= rows[-1]["aggregate_rounds"]


_register(Scenario(
    name="ablation_gamma",
    title="Ablation / γ: machine count vs capacity vs primitive round costs",
    group="ablation",
    problem="primitives",
    graph_family="random_connected",
    regimes=("heterogeneous",),
    axis="gamma",
    points=(0.25, 0.5, 0.75),
    quick_points=(0.25, 0.75),
    measure=_measure_ablation_gamma,
    columns=("gamma", "machines", "capacity", "fanout", "sort_rounds",
             "aggregate_rounds", "annotate_rounds"),
    check=_check_ablation_gamma,
    paper_ref="Section 2 / Claims 2-3",
))


def _measure_ablation_kkt(p: float, rng: random.Random, quick: bool) -> dict:
    n, m = (40, 600) if quick else (80, 1600)
    trials = 2 if quick else 5
    local = random.Random(47)
    graph = generators.random_connected_graph(n, m, local).with_unique_weights(local)
    sampled_sizes, light_counts = [], []
    for seed in range(trials):
        coin = random.Random(seed)
        sample = [e for e in graph.edges if coin.random() < p]
        forest = kruskal_edges(n, sample)
        light = f_light_edges(n, forest, graph.edges)
        sampled_sizes.append(len(sample))
        light_counts.append(len(light))
    return {
        "p": p,
        "sampled_edges~pm": sum(sampled_sizes) / trials,
        "pm": p * m,
        "f_light~n/p": sum(light_counts) / trials,
        "n/p": n / p,
        "total_on_large": sum(sampled_sizes) / trials + sum(light_counts) / trials,
    }


def _check_ablation_kkt(rows) -> None:
    for row in rows:
        # KKT expectation bound with a generous constant.
        assert row["f_light~n/p"] <= 3 * row["n/p"]
    # The two curves move in opposite directions.
    assert rows[0]["sampled_edges~pm"] < rows[-1]["sampled_edges~pm"]
    assert rows[0]["f_light~n/p"] > rows[-1]["f_light~n/p"]


_register(Scenario(
    name="ablation_kkt_sampling",
    title="Ablation / Lemma 3.2: sampled edges ~ pm vs F-light edges ~ n/p",
    group="ablation",
    problem="mst",
    graph_family="random_connected",
    regimes=("heterogeneous",),
    axis="p",
    points=(0.05, 0.1, 0.25, 0.5),
    quick_points=(0.1, 0.5),
    measure=_measure_ablation_kkt,
    columns=("p", "sampled_edges~pm", "pm", "f_light~n/p", "n/p",
             "total_on_large"),
    check=_check_ablation_kkt,
    paper_ref="Lemma 3.2 (KKT sampling)",
))


def _measure_ablation_copies(copies: int, rng: random.Random, quick: bool) -> dict:
    n = 40
    trials = 4 if quick else 12
    graph = generators.planted_components_graph(n, 4, 40, random.Random(53))
    truth = component_labels(graph)
    successes = 0
    for seed in range(trials):
        local = random.Random(1000 * copies + seed)
        spec = GraphSketchSpec.generate(n, local, copies=copies)
        sketches = {v: VertexSketch(spec, v) for v in range(n)}
        for u, v in graph.edges:
            sketches[u].add_edge(u, v)
            sketches[v].add_edge(u, v)
        if components_from_sketches(spec, sketches) == truth:
            successes += 1
    words = VertexSketch(
        GraphSketchSpec.generate(n, random.Random(0), copies=copies), 0
    ).word_size()
    return {
        "copies": copies,
        "success_rate": successes / trials,
        "sketch_words_per_vertex": words,
    }


def _check_ablation_copies(rows) -> None:
    rates = [row["success_rate"] for row in rows]
    assert rates[-1] >= rates[0]
    assert rates[-1] >= 0.9  # the default (3 copies) is reliable
    words = [row["sketch_words_per_vertex"] for row in rows]
    assert words == sorted(words)  # the price: linearly larger sketches


_register(Scenario(
    name="ablation_sketch_copies",
    title="Ablation / Theorem C.1: sampler copies vs connectivity success rate",
    group="ablation",
    problem="connectivity",
    graph_family="planted_components",
    regimes=("heterogeneous",),
    axis="copies",
    points=(1, 2, 3),
    quick_points=(1, 3),
    measure=_measure_ablation_copies,
    columns=("copies", "success_rate", "sketch_words_per_vertex"),
    check=_check_ablation_copies,
    paper_ref="Theorem C.1 (ℓ₀-sampler copies)",
))


# ----------------------------------------------------------------------
# Workload matrix: new graph families x ModelConfig regimes
# ----------------------------------------------------------------------

_WORKLOAD_REGIMES = ("heterogeneous", "sublinear", "near_linear", "superlinear")


def _workload_point(graph, regime: str, rng: random.Random) -> dict:
    """Connectivity (the paper's flagship O(1) result) on one workload
    graph under one regime; every regime must label components exactly."""
    truth = component_labels(graph)
    config = regime_config(regime, n=graph.n, m=graph.m)
    if regime == "sublinear":
        result = sublinear_connectivity(graph, config=config, rng=rng)
    else:
        result = heterogeneous_connectivity(graph, config=config, rng=rng)
    assert result.labels == truth
    return {
        "regime": regime,
        "n": graph.n,
        "m": graph.m,
        "max_degree": graph.max_degree,
        "components": len(set(truth)),
        "rounds": result.rounds,
        "_ledgers": {"": result.cluster.ledger},
    }


def _check_workload(rows) -> None:
    by_regime = {row["regime"]: row for row in rows}
    # A large machine turns connectivity into O(1) rounds; the sublinear
    # regime pays for Borůvka iterations.
    het = by_regime["heterogeneous"]["rounds"]
    assert het <= 8
    assert by_regime["sublinear"]["rounds"] > het


_WORKLOAD_COLUMNS = ("regime", "n", "m", "max_degree", "components", "rounds")


def _register_workload(
    name: str, family: str, title: str, build, group: str = "workload"
) -> None:
    def measure(regime: str, rng: random.Random, quick: bool) -> dict:
        return _workload_point(build(rng, quick), regime, rng)

    _register(Scenario(
        name=name,
        title=title,
        group=group,
        problem="connectivity",
        graph_family=family,
        regimes=_WORKLOAD_REGIMES,
        axis="regime",
        points=_WORKLOAD_REGIMES,
        quick_points=_WORKLOAD_REGIMES,
        measure=measure,
        columns=_WORKLOAD_COLUMNS,
        check=_check_workload,
        paper_ref="Theorem C.1 across Section 2 / Section 6 regimes",
    ))


_register_workload(
    "workload_power_law",
    "power_law",
    "Workload matrix / power-law (Chung–Lu) graphs across regimes",
    lambda rng, quick: generators.power_law_graph(
        64 if quick else 128, random.Random(7), exponent=2.5, avg_degree=4.0
    ),
)

_register_workload(
    "workload_grid",
    "grid",
    "Workload matrix / 2D torus grid across regimes",
    lambda rng, quick: generators.torus_graph(*( (6, 8) if quick else (11, 12) )),
)

_register_workload(
    "workload_community",
    "planted_community",
    "Workload matrix / planted-community graphs across regimes",
    lambda rng, quick: generators.planted_community_graph(
        60 if quick else 120, 6, 0.3, 10, random.Random(11)
    ),
)

_register_workload(
    "workload_multi_component",
    "multi_component",
    "Workload matrix / disconnected multi-component graphs across regimes",
    lambda rng, quick: generators.multi_component_graph(
        60 if quick else 120, 5, 4.0, random.Random(13)
    ),
)

_register_workload(
    "workload_near_clique",
    "near_clique",
    "Workload matrix / dense near-clique graphs across regimes",
    lambda rng, quick: generators.near_clique_graph(
        32 if quick else 48, 20, random.Random(19)
    ),
)


# ----------------------------------------------------------------------
# Large-n regime: the columnar round engine makes sweeps 10-50x the
# classic sizes affordable, where the heterogeneous curves visibly
# separate from the sublinear baselines.
# ----------------------------------------------------------------------

def _check_large_connectivity(rows) -> None:
    het_rounds = [row["het_rounds"] for row in rows]
    assert max(het_rounds) <= 8  # O(1) stays flat across a 4x n sweep
    # At large n the sublinear Boruvka baseline is far above the constant.
    assert all(row["sub_rounds"] > max(het_rounds) for row in rows)


_register(Scenario(
    name="table1_connectivity_large",
    title="Large-n / connectivity: O(1) heterogeneous vs ~log n sublinear "
          "at 10-50x classic sweep sizes",
    group="large",
    problem="connectivity",
    graph_family="planted_components",
    regimes=("heterogeneous", "sublinear"),
    axis="n",
    points=(320, 640, 1280),
    quick_points=(160, 320),
    measure=_measure_table1_connectivity,
    columns=("n", "m", "het_rounds", "sub_rounds", "theory_het", "theory_sub"),
    check=_check_large_connectivity,
    paper_ref="Theorem C.1 vs [11], large-n regime",
))


def _measure_large_mst(ratio: int, rng: random.Random, quick: bool) -> dict:
    n = 320 if quick else 960
    local = random.Random(ratio)
    m = min(n * (n - 1) // 2, n * ratio)
    graph = generators.random_connected_graph(n, m, local).with_unique_weights(local)
    het = heterogeneous_mst(graph, rng=random.Random(ratio + 1))
    assert verify_mst(graph, het.edges)
    sub = sublinear_boruvka_mst(graph, rng=random.Random(ratio + 2))
    assert verify_mst(graph, sub.edges)
    return {
        "m/n": ratio,
        "het_steps": het.boruvka_steps,
        "het_rounds": het.rounds,
        "sub_iters": sub.iterations,
        "sub_rounds": sub.rounds,
        "theory_het~loglog(m/n)": predicted_rounds("mst", "heterogeneous", n=n, m=m),
        "theory_sub~log(n)": predicted_rounds("mst", "sublinear", n=n, m=m),
        "_ledgers": {"het": het.cluster.ledger, "sub": sub.cluster.ledger},
    }


def _check_large_mst(rows) -> None:
    steps = [row["het_steps"] for row in rows]
    assert steps == sorted(steps)  # the log log curve survives scale
    assert steps[-1] <= 5
    # Borůvka phase structure: O(log log(m/n)) heterogeneous steps stay
    # below the sublinear baseline's ~log n iterations at every density.
    assert all(row["sub_iters"] > row["het_steps"] for row in rows)
    assert all(row["sub_rounds"] > 0 for row in rows)


_register(Scenario(
    name="table1_mst_large",
    title="Large-n / MST: O(log log(m/n)) heterogeneous vs O(log n) "
          "sublinear at n=960",
    group="large",
    problem="mst",
    graph_family="random_connected",
    regimes=("heterogeneous", "sublinear"),
    axis="m/n",
    points=(2, 8, 32),
    quick_points=(2, 8),
    measure=_measure_large_mst,
    columns=("m/n", "het_steps", "het_rounds", "sub_iters", "sub_rounds",
             "theory_het~loglog(m/n)", "theory_sub~log(n)"),
    check=_check_large_mst,
    paper_ref="Theorem 1.2 / Theorem 3.1, large-n regime",
))


def _measure_large_matching(density: int, rng: random.Random, quick: bool) -> dict:
    n = 320 if quick else 800
    local = random.Random(density)
    m = min(n * (n - 1) // 2, n * density)
    graph = generators.random_connected_graph(n, m, local)
    het = heterogeneous_matching(graph, rng=random.Random(density + 1))
    assert is_maximal_matching(graph, het.matching)
    sub = sublinear_matching(graph, rng=random.Random(density + 2))
    assert is_maximal_matching(graph, sub.matching)
    return {
        "avg_degree": round(graph.average_degree, 1),
        "het_rounds": het.rounds,
        "phase1_iters": het.phase1_iterations,
        "gu_charge": round(low_degree_phase_rounds(graph.max_degree), 1),
        "sub_rounds": sub.rounds,
        "theory_het~sqrt": predicted_rounds("matching", "heterogeneous", n=n, m=m),
        "_ledgers": {"het": het.cluster.ledger, "sub": sub.cluster.ledger},
    }


def _check_large_matching(rows) -> None:
    het = [row["het_rounds"] for row in rows]
    assert het[-1] <= 3 * het[0]  # sqrt-log growth, never linear


_register(Scenario(
    name="table1_matching_large",
    title="Large-n / maximal matching: O(sqrt(log d log log d)) "
          "heterogeneous at n=800",
    group="large",
    problem="matching",
    graph_family="random_connected",
    regimes=("heterogeneous", "sublinear"),
    axis="m/n",
    points=(2, 8, 24),
    quick_points=(2, 8),
    measure=_measure_large_matching,
    columns=("avg_degree", "het_rounds", "phase1_iters", "gu_charge",
             "sub_rounds", "theory_het~sqrt"),
    check=_check_large_matching,
    paper_ref="Theorem 5.1, large-n regime",
))


_register_workload(
    "workload_power_law_large",
    "power_law",
    "Large-n workload / power-law (Chung-Lu) graphs across regimes",
    lambda rng, quick: generators.power_law_graph(
        320 if quick else 1280, random.Random(107), exponent=2.5, avg_degree=4.0
    ),
    group="large",
)

_register_workload(
    "workload_grid_large",
    "grid",
    "Large-n workload / 2D torus grid across regimes",
    lambda rng, quick: generators.torus_graph(*( (12, 16) if quick else (30, 40) )),
    group="large",
)

_register_workload(
    "workload_community_large",
    "planted_community",
    "Large-n workload / planted-community graphs across regimes",
    lambda rng, quick: generators.planted_community_graph(
        *( (240, 6, 0.1, 12) if quick else (1200, 12, 0.04, 40) ),
        random.Random(111)
    ),
    group="large",
)

_register_workload(
    "workload_multi_component_large",
    "multi_component",
    "Large-n workload / disconnected multi-component graphs across regimes",
    lambda rng, quick: generators.multi_component_graph(
        *( (240, 5) if quick else (1200, 8) ), 4.0, random.Random(113)
    ),
    group="large",
)

_register_workload(
    "workload_near_clique_large",
    "near_clique",
    "Large-n workload / dense near-clique graphs across regimes "
    "(~25x the classic edge count)",
    lambda rng, quick: generators.near_clique_graph(
        64 if quick else 160, 40, random.Random(119)
    ),
    group="large",
)


# ----------------------------------------------------------------------
# Huge regime: 10-100x beyond `large`.  The array-native primitives
# (columnar record batches end to end) plus the vectorized sketch
# substrate push single-host sweeps to n ~ 10^4-10^5; the connectivity
# row additionally uses gamma = 0.75 (fewer, fatter small machines — an
# in-model choice of the Section 2 memory exponent) so per-machine
# batches are large enough to amortize the kernel dispatch.
# Regenerating the full artifacts is minutes-scale; set
# REPRO_SKETCH_BACKEND=numpy to use the vectorized sketch kernels
# (the artifacts are bit-identical either way).
# ----------------------------------------------------------------------

def _measure_huge_connectivity(n: int, rng: random.Random, quick: bool) -> dict:
    local = random.Random(n)
    graph = generators.planted_components_graph(n, 4, 2 * n, local)
    truth = component_labels(graph)
    config = ModelConfig(n=n, m=graph.m, gamma=0.75)
    # A single sketch instance suffices at this scale (failure is
    # one-sided and the seeds are pinned; the assertion below would
    # catch a miss at pin time).
    het = heterogeneous_connectivity(
        graph, config=config, rng=random.Random(n + 1), instances=1
    )
    assert het.labels == truth
    sub = sublinear_connectivity(graph, rng=random.Random(n + 2))
    assert sub.labels == truth
    return {
        "n": n,
        "m": graph.m,
        "het_rounds": het.rounds,
        "sub_rounds": sub.rounds,
        "theory_het": "O(1)",
        "theory_sub": "~log n",
        "_ledgers": {"het": het.cluster.ledger, "sub": sub.cluster.ledger},
    }


def _check_huge_connectivity(rows) -> None:
    het_rounds = [row["het_rounds"] for row in rows]
    assert max(het_rounds) <= 8  # O(1) survives the 10^4-vertex jump
    assert all(row["sub_rounds"] > max(het_rounds) for row in rows)


_register(Scenario(
    name="table1_connectivity_huge",
    title="Huge-n / connectivity: O(1) heterogeneous vs ~log n sublinear "
          "at n=12800 (10x the large sweep)",
    group="huge",
    problem="connectivity",
    graph_family="planted_components",
    regimes=("heterogeneous", "sublinear"),
    axis="n",
    points=(12800,),
    quick_points=(1600,),
    measure=_measure_huge_connectivity,
    columns=("n", "m", "het_rounds", "sub_rounds", "theory_het", "theory_sub"),
    check=_check_huge_connectivity,
    paper_ref="Theorem C.1 vs [11], huge-n regime",
))


def _measure_huge_mst(ratio: int, rng: random.Random, quick: bool) -> dict:
    n = 3000 if quick else 24000
    local = random.Random(ratio)
    m = min(n * (n - 1) // 2, n * ratio)
    graph = generators.random_connected_graph(n, m, local).with_unique_weights(local)
    het = heterogeneous_mst(graph, rng=random.Random(ratio + 1))
    assert verify_mst(graph, het.edges)
    sub = sublinear_boruvka_mst(graph, rng=random.Random(ratio + 2))
    assert verify_mst(graph, sub.edges)
    return {
        "m/n": ratio,
        "het_steps": het.boruvka_steps,
        "het_rounds": het.rounds,
        "sub_iters": sub.iterations,
        "sub_rounds": sub.rounds,
        "theory_het~loglog(m/n)": predicted_rounds("mst", "heterogeneous", n=n, m=m),
        "theory_sub~log(n)": predicted_rounds("mst", "sublinear", n=n, m=m),
        "_ledgers": {"het": het.cluster.ledger, "sub": sub.cluster.ledger},
    }


def _check_huge_mst(rows) -> None:
    steps = [row["het_steps"] for row in rows]
    assert steps == sorted(steps)
    assert steps[-1] <= 5
    assert all(row["sub_iters"] > row["het_steps"] for row in rows)


_register(Scenario(
    name="table1_mst_huge",
    title="Huge-n / MST: O(log log(m/n)) heterogeneous vs O(log n) "
          "sublinear at n=24000 (25x the large sweep)",
    group="huge",
    problem="mst",
    graph_family="random_connected",
    regimes=("heterogeneous", "sublinear"),
    axis="m/n",
    points=(2, 8),
    quick_points=(2,),
    measure=_measure_huge_mst,
    columns=("m/n", "het_steps", "het_rounds", "sub_iters", "sub_rounds",
             "theory_het~loglog(m/n)", "theory_sub~log(n)"),
    check=_check_huge_mst,
    paper_ref="Theorem 1.2 / Theorem 3.1, huge-n regime",
))


def _measure_huge_matching(density: int, rng: random.Random, quick: bool) -> dict:
    n = 2500 if quick else 10000
    local = random.Random(density)
    m = min(n * (n - 1) // 2, n * density)
    graph = generators.random_connected_graph(n, m, local)
    het = heterogeneous_matching(graph, rng=random.Random(density + 1))
    assert is_maximal_matching(graph, het.matching)
    sub = sublinear_matching(graph, rng=random.Random(density + 2))
    assert is_maximal_matching(graph, sub.matching)
    return {
        "avg_degree": round(graph.average_degree, 1),
        "het_rounds": het.rounds,
        "phase1_iters": het.phase1_iterations,
        "gu_charge": round(low_degree_phase_rounds(graph.max_degree), 1),
        "sub_rounds": sub.rounds,
        "theory_het~sqrt": predicted_rounds("matching", "heterogeneous", n=n, m=m),
        "_ledgers": {"het": het.cluster.ledger, "sub": sub.cluster.ledger},
    }


def _check_huge_matching(rows) -> None:
    het = [row["het_rounds"] for row in rows]
    assert het[-1] <= 3 * het[0]  # sqrt-log growth, never linear


_register(Scenario(
    name="table1_matching_huge",
    title="Huge-n / maximal matching: O(sqrt(log d log log d)) "
          "heterogeneous at n=10000 (12x the large sweep)",
    group="huge",
    problem="matching",
    graph_family="random_connected",
    regimes=("heterogeneous", "sublinear"),
    axis="m/n",
    points=(2, 8),
    quick_points=(2,),
    measure=_measure_huge_matching,
    columns=("avg_degree", "het_rounds", "phase1_iters", "gu_charge",
             "sub_rounds", "theory_het~sqrt"),
    check=_check_huge_matching,
    paper_ref="Theorem 5.1, huge-n regime",
))


def _measure_huge_workload(regime: str, rng: random.Random, quick: bool) -> dict:
    """The workload-matrix row at huge scale.  Same shape as
    :func:`_workload_point`, but the sketch regimes run a single
    amplification instance — failure is one-sided, the seeds are pinned,
    and the exactness assertion would catch a miss at pin time."""
    graph = generators.power_law_graph(
        800 if quick else 12800, random.Random(127), exponent=2.5, avg_degree=4.0
    )
    truth = component_labels(graph)
    config = regime_config(regime, n=graph.n, m=graph.m)
    if regime == "sublinear":
        result = sublinear_connectivity(graph, config=config, rng=rng)
    else:
        result = heterogeneous_connectivity(
            graph, config=config, rng=rng, instances=1
        )
    assert result.labels == truth
    return {
        "regime": regime,
        "n": graph.n,
        "m": graph.m,
        "max_degree": graph.max_degree,
        "components": len(set(truth)),
        "rounds": result.rounds,
        "_ledgers": {"": result.cluster.ledger},
    }


_register(Scenario(
    name="workload_power_law_huge",
    title="Huge workload / power-law (Chung-Lu) graphs across regimes "
          "(10x the large sweep)",
    group="huge",
    problem="connectivity",
    graph_family="power_law",
    regimes=_WORKLOAD_REGIMES,
    axis="regime",
    points=_WORKLOAD_REGIMES,
    quick_points=_WORKLOAD_REGIMES,
    measure=_measure_huge_workload,
    columns=_WORKLOAD_COLUMNS,
    check=_check_workload,
    paper_ref="Theorem C.1 across Section 2 / Section 6 regimes, huge-n",
))


# ----------------------------------------------------------------------
# Robustness: adaptive communication throttling on adversarial inputs
# ----------------------------------------------------------------------
# Each scenario builds an adversarially dense workload, then *calibrates*
# the capacity window against it: a first run under the default generous
# capacities (throttle mode "advise") measures the workload's peak
# per-round load fraction, and the scenario tightens ``ModelConfig.
# constant`` so that the same peak lands at ``_ROBUSTNESS_BREACH`` times
# the (smallest binding) capacity — over the hard limit, inside 2x of it.
# Three arms then run in that tight window with identical inputs and
# seeds: ``off`` records the violations an oblivious protocol incurs,
# ``advise`` must behave byte-identically to ``off`` while logging the
# throttling decisions it *would* take, and ``enforce`` must finish with
# **zero** violations at a round inflation of at most 2x (the split of an
# over-budget round lands at ``<= breach / headroom`` chunks).  Only the
# enforce arm's ledger feeds the artifact totals, so ``bench --strict``
# holds this group to zero recorded violations; the off arm's toll is
# reported as plain row columns.
#
# The workloads are transport-heavy by design (payloads broadcast or
# disseminated but not stored): plan splitting re-schedules traffic, it
# cannot shrink resident state, so a comm-only breach window is exactly
# the regime the controller is built for (memory stays ~an order of
# magnitude below capacity — asserted via the calibration digest).

_ROBUSTNESS_BREACH = 1.3
_ROBUSTNESS_DEFAULT_CONSTANT = 4.0


def _run_throttle_arm(pipeline, n, m, gamma, constant, mode, seed):
    config = ModelConfig.heterogeneous(
        n=n, m=m, gamma=gamma, constant=constant
    ).with_throttle(mode)
    cluster = Cluster(config, rng=random.Random(seed))
    output = pipeline(cluster)
    return cluster, output


def _measure_robustness_point(n, gamma, make_pipeline):
    """The shared calibrate-then-three-arms protocol (see section comment)."""
    m, pipeline = make_pipeline(n)
    seed = n + 1

    calib, _ = _run_throttle_arm(
        pipeline, n, m, gamma, _ROBUSTNESS_DEFAULT_CONSTANT, "advise", seed
    )
    peak = calib.throttle.peak_traffic_frac
    mem_peak = calib.throttle.peak_memory_frac
    assert peak > 0.0, "calibration run moved no words"
    # Comm-only breach window: tightening to put *traffic* at BREACH must
    # leave *memory* clearly inside the hard limit.
    assert mem_peak < 0.7 * peak, (
        f"workload is memory-bound (mem {mem_peak:.3f} vs traffic {peak:.3f}); "
        "splitting could not fix its violations"
    )
    tight = _ROBUSTNESS_DEFAULT_CONSTANT * peak / _ROBUSTNESS_BREACH

    off, off_out = _run_throttle_arm(pipeline, n, m, gamma, tight, "off", seed)
    adv, adv_out = _run_throttle_arm(pipeline, n, m, gamma, tight, "advise", seed)
    enf, enf_out = _run_throttle_arm(pipeline, n, m, gamma, tight, "enforce", seed)

    off_violations = list(off.ledger.violations)
    assert off_violations, "the tight window must breach without throttling"
    assert all(
        v.kind in ("sent", "received") for v in off_violations
    ), "robustness scenarios must breach communication budgets only"
    assert not enf.ledger.violations, (
        "enforce mode must keep every round under the hard limits: "
        f"{list(enf.ledger.violations)[:3]}"
    )
    # Advise mode observes but never intervenes: same behaviour as off,
    # and it must have logged at least one would-be decision.
    assert adv.ledger.summary() == off.ledger.summary()
    assert adv.throttle.events, "advise arm logged no throttling decisions"
    # Graceful degradation, not silent degradation: identical outputs and
    # total words across all three arms, bounded round inflation.
    assert off_out == adv_out == enf_out
    assert off.ledger.total_words == adv.ledger.total_words == enf.ledger.total_words
    assert enf.ledger.rounds <= 2 * off.ledger.rounds, (
        f"round inflation {enf.ledger.rounds}/{off.ledger.rounds} exceeds 2x"
    )

    enf_summary = enf.throttle.summary()
    return {
        "n": n,
        "m": m,
        "peak_frac": round(peak, 3),
        "cap_small": off.config.small_capacity,
        "off_rounds": off.ledger.rounds,
        "off_violations": len(off_violations),
        "advise_events": len(adv.throttle.events),
        "enf_rounds": enf.ledger.rounds,
        "enf_violations": len(enf.ledger.violations),
        "inflation": round(enf.ledger.rounds / max(1, off.ledger.rounds), 3),
        "splits": enf_summary["splits"],
        "_ledgers": {"enforce": enf.ledger},
        "_throttle": enf_summary,
    }


_ROBUSTNESS_COLUMNS = (
    "n", "m", "peak_frac", "cap_small", "off_rounds", "off_violations",
    "advise_events", "enf_rounds", "enf_violations", "inflation", "splits",
)


def _check_robustness(rows) -> None:
    assert all(row["off_violations"] >= 1 for row in rows)
    assert all(row["enf_violations"] == 0 for row in rows)
    assert all(row["inflation"] <= 2.0 for row in rows)


def _measure_robustness_near_clique(n: int, rng: random.Random, quick: bool) -> dict:
    """Hot-vertex list pushed to every machine of a near-clique: each
    relay of the broadcast tree forwards ``fanout`` copies of an
    ~n-word payload in one round — the classic fan-out burst."""

    def make(n: int):
        local = random.Random(n)
        graph = generators.near_clique_graph(n, n // 4, local)
        degrees = [0] * n
        for edge in graph.edges:
            degrees[edge[0]] += 1
            degrees[edge[1]] += 1
        hotlist = tuple(v for v in range(n) if degrees[v] >= n // 2)
        edges = [(e[0], e[1]) for e in graph.edges]

        def pipeline(cluster):
            cluster.distribute_edges(edges)
            rounds = broadcast(
                cluster, cluster.large.machine_id, hotlist, cluster.small_ids,
                note="hotlist",
            )
            return (len(hotlist), rounds >= 1)

        return graph.m, pipeline

    return _measure_robustness_point(n, 0.5, make)


_register(Scenario(
    name="robustness_near_clique",
    title="Throttled hot-list broadcast over a near-clique "
          "(off / advise / enforce in a tight capacity window)",
    group="robustness",
    problem="connectivity",
    graph_family="near_clique",
    regimes=("heterogeneous",),
    axis="n",
    points=(48, 64, 96),
    quick_points=(48, 64),
    measure=_measure_robustness_near_clique,
    columns=_ROBUSTNESS_COLUMNS,
    check=_check_robustness,
    paper_ref="Section 2 capacity budgets under adversarial density",
))


def _measure_robustness_heavy_components(
    n: int, rng: random.Random, quick: bool
) -> dict:
    """Two dissemination waves (component labels, then component sizes)
    over planted heavy components: the per-key trees concentrate their
    roots on the low machine ids, whose push rounds relay every tree at
    once — the hot-spot sender burst."""

    def make(n: int):
        local = random.Random(n)
        graph = generators.planted_components_graph(n, 4, 2 * n, local)
        edges = [(e[0], e[1]) for e in graph.edges]
        labels = component_labels(graph)
        sizes: dict[int, int] = {}
        for v in range(n):
            sizes[labels[v]] = sizes.get(labels[v], 0) + 1

        def pipeline(cluster):
            cluster.distribute_edges(edges)
            holders = holders_by_key(cluster, "edges", lambda e: (e[0], e[1]))
            wave1 = disseminate(
                cluster, {v: labels[v] for v in range(n)}, holders, note="labels"
            )
            wave2 = disseminate(
                cluster,
                {v: sizes[labels[v]] for v in range(n)},
                holders,
                note="sizes",
            )
            return (
                sorted((mid, len(got)) for mid, got in wave1.items()),
                sorted((mid, len(got)) for mid, got in wave2.items()),
            )

        return graph.m, pipeline

    return _measure_robustness_point(n, 0.5, make)


_register(Scenario(
    name="robustness_heavy_components",
    title="Throttled label dissemination over planted heavy components "
          "(off / advise / enforce in a tight capacity window)",
    group="robustness",
    problem="connectivity",
    graph_family="planted_components",
    regimes=("heterogeneous",),
    axis="n",
    points=(48, 64, 96),
    quick_points=(48, 64),
    measure=_measure_robustness_heavy_components,
    columns=_ROBUSTNESS_COLUMNS,
    check=_check_robustness,
    paper_ref="Claim 3 dissemination under adversarial concentration",
))


def _measure_robustness_power_law_gamma(
    n: int, rng: random.Random, quick: bool
) -> dict:
    """Degree-census converge onto the large machine of a power-law graph
    at the regime-boundary ``gamma = 0.75`` (few, fat small machines),
    followed by a sample-sort of the edges: the census gather is the
    fan-in burst at the large machine; the sort runs inside budget and
    exercises the sample-rate throttle hook after the breach."""

    def make(n: int):
        local = random.Random(n)
        graph = generators.power_law_graph(n, local, exponent=2.2, avg_degree=6.0)
        edges = [(e[0], e[1]) for e in graph.edges]

        def pipeline(cluster):
            cluster.distribute_edges(edges)
            pairs_by_src = {}
            for machine in cluster.smalls:
                counts: dict[int, int] = {}
                for u, v in machine.get("edges", []):
                    counts[u] = counts.get(u, 0) + 1
                    counts[v] = counts.get(v, 0) + 1
                pairs_by_src[machine.machine_id] = sorted(counts.items())
            large = cluster.large.machine_id
            received = cluster.gather(large, pairs_by_src, note="census")
            census: dict[int, int] = {}
            for v, c in received:
                census[v] = census.get(v, 0) + c
            layout = sample_sort(cluster, "edges", key=(0, 1), note="rank")
            return (sorted(census.items()), tuple(layout.counts))

        return graph.m, pipeline

    return _measure_robustness_point(n, 0.75, make)


_register(Scenario(
    name="robustness_power_law_gamma",
    title="Throttled degree census + sort on a power-law graph at "
          "boundary gamma (off / advise / enforce in a tight capacity window)",
    group="robustness",
    problem="sort",
    graph_family="power_law",
    regimes=("heterogeneous",),
    axis="n",
    points=(64, 96, 128),
    quick_points=(64, 96),
    measure=_measure_robustness_power_law_gamma,
    columns=_ROBUSTNESS_COLUMNS,
    check=_check_robustness,
    paper_ref="Claim 5 sorting + Claim 2 aggregation at the gamma boundary",
))
