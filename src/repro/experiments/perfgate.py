"""Throughput regression gate over ``repro.perf/1`` artifacts.

``benchmarks/results/perf/`` holds the committed machine-throughput
baselines (items/s, edges/s per benchmark row).  The gate compares a
freshly measured set of artifacts against those baselines and fails when
any matched metric drops by more than the tolerance.  Rows are matched
by their full identity — every non-metric key/value pair, including
workload sizing — so a quick-mode run simply does not match full-size
baseline rows (reported as notes, never failures), and new benchmarks or
rows never fire the gate.

The comparator lives here (not in ``scripts/perf_gate.py``) so the
hypothesis property suite can drive it directly; the script is a thin
CLI wrapper.
"""

from __future__ import annotations

import json
import pathlib
import shutil
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "DEFAULT_BASELINE_DIR",
    "DEFAULT_TOLERANCE",
    "DERIVED_KEYS",
    "GateResult",
    "METRIC_KEYS",
    "PERF_SCHEMA_VERSION",
    "compare_perf",
    "load_perf_dir",
    "row_identity",
    "update_baseline",
]

PERF_SCHEMA_VERSION = "repro.perf/1"

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_BASELINE_DIR = _REPO_ROOT / "benchmarks" / "results" / "perf"

#: Gated throughput metrics (higher is better).
METRIC_KEYS = frozenset({
    "items_per_sec", "edges_per_sec", "updates_per_sec", "queries_per_sec",
})
#: Derived ratios recomputed every run; excluded from both row identity
#: and gating (a speedup shift is already visible in the raw metrics).
#: ``refresh_sec`` is lower-is-better wall time, so it cannot ride the
#: throughput comparator; it stays informational.
DERIVED_KEYS = frozenset({"speedup", "overhead_pct", "refresh_sec"})

#: Fail on a >30% throughput drop by default.
DEFAULT_TOLERANCE = 0.30


def row_identity(row: Mapping[str, Any]) -> tuple:
    """A row's identity: every non-metric, non-derived key/value pair."""
    return tuple(sorted(
        (k, str(v)) for k, v in row.items()
        if k not in METRIC_KEYS and k not in DERIVED_KEYS
    ))


def load_perf_dir(path: pathlib.Path | str) -> dict[str, dict[str, Any]]:
    """Load and validate every ``repro.perf/1`` artifact in *path*,
    keyed by benchmark name.  Raises ``ValueError`` on malformed files."""
    path = pathlib.Path(path)
    artifacts: dict[str, dict[str, Any]] = {}
    for file in sorted(path.glob("*.json")):
        obj = json.loads(file.read_text())
        if obj.get("schema") != PERF_SCHEMA_VERSION:
            raise ValueError(
                f"{file}: schema {obj.get('schema')!r}, "
                f"expected {PERF_SCHEMA_VERSION!r}"
            )
        if not isinstance(obj.get("benchmark"), str):
            raise ValueError(f"{file}: missing benchmark name")
        if not isinstance(obj.get("rows"), list):
            raise ValueError(f"{file}: rows must be a list")
        artifacts[obj["benchmark"]] = obj
    return artifacts


@dataclass
class GateResult:
    """Outcome of one baseline/measured comparison."""

    failures: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    matched: int = 0

    def ok(self, min_matched: int = 0) -> bool:
        if self.failures:
            return False
        return self.matched >= min_matched

    def render(self) -> str:
        lines = [f"perf gate: {self.matched} metric(s) compared"]
        for note in self.notes:
            lines.append(f"  note: {note}")
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        return "\n".join(lines)


def compare_perf(
    baseline: Mapping[str, Mapping[str, Any]],
    measured: Mapping[str, Mapping[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> GateResult:
    """Compare measured throughput against baselines.

    A failure is recorded iff a matched metric satisfies
    ``measured < baseline * (1 - tolerance)`` — strictly below the
    allowance, so improvements and exact-boundary values always pass.
    Unmatched benchmarks, rows, and metric keys on either side are
    reported as notes.
    """
    result = GateResult()
    for name in sorted(baseline):
        base_artifact = baseline[name]
        meas_artifact = measured.get(name)
        if meas_artifact is None:
            result.notes.append(f"{name}: no measured artifact")
            continue
        meas_rows = {
            row_identity(row): row for row in meas_artifact.get("rows", [])
        }
        for row in base_artifact.get("rows", []):
            identity = row_identity(row)
            metrics = {
                k: row[k] for k in sorted(METRIC_KEYS)
                if isinstance(row.get(k), (int, float))
            }
            label = f"{name} {dict(identity)}"
            if not metrics:
                continue
            meas_row = meas_rows.get(identity)
            if meas_row is None:
                result.notes.append(f"{label}: no matching measured row")
                continue
            for key, base_value in metrics.items():
                meas_value = meas_row.get(key)
                if not isinstance(meas_value, (int, float)):
                    result.notes.append(
                        f"{label}: measured row lacks {key}"
                    )
                    continue
                if base_value <= 0:
                    result.notes.append(
                        f"{label}: non-positive baseline {key}"
                    )
                    continue
                result.matched += 1
                floor = base_value * (1.0 - tolerance)
                if meas_value < floor:
                    drop = 100.0 * (1.0 - meas_value / base_value)
                    result.failures.append(
                        f"{label}: {key} dropped {drop:.1f}% "
                        f"({base_value:.1f} -> {meas_value:.1f}, "
                        f"tolerance {tolerance:.0%})"
                    )
    for name in sorted(measured):
        if name not in baseline:
            result.notes.append(f"{name}: new benchmark (no baseline)")
    return result


def update_baseline(
    measured_dir: pathlib.Path | str,
    baseline_dir: pathlib.Path | str = DEFAULT_BASELINE_DIR,
) -> list[pathlib.Path]:
    """Copy every measured artifact over the committed baselines;
    returns the updated paths.  Validates the measured set first."""
    measured_dir = pathlib.Path(measured_dir)
    baseline_dir = pathlib.Path(baseline_dir)
    artifacts = load_perf_dir(measured_dir)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    updated: list[pathlib.Path] = []
    for name in sorted(artifacts):
        src = measured_dir / f"{name}.json"
        dst = baseline_dir / f"{name}.json"
        shutil.copyfile(src, dst)
        updated.append(dst)
    return updated
