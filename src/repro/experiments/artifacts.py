"""Versioned JSON artifacts for benchmark runs.

Schema ``repro.bench/2`` — one JSON object per scenario run, written to
``benchmarks/results/<scenario>.json`` next to the legacy text table:

```
{
  "schema":       "repro.bench/2",
  "scenario":     "table1_mst",            # registry name
  "title":        "...",                   # human heading
  "group":        "table1",                # table1|figure|theorem|ablation|workload
  "problem":      "mst",                   # repro.analysis.theory key
  "graph_family": "random_connected",      # repro.graph.generators family
  "regimes":      ["heterogeneous", ...],  # ModelConfig regimes exercised
  "axis":         "m/n",                   # sweep-axis column name
  "quick":        false,                   # smoke sizing?
  "columns":      ["m/n", "het_rounds", ...],
  "rows":         [{"m/n": 2, "het_rounds": 9, ...}, ...],
  "totals":       {"rounds": 128, "words": 230358,
                   "max_memory": 4888, "violations": 12},
  "throttle":     {"mode": "enforce", "headroom": 0.9, ...}  # optional
}
```

The ``throttle`` block is **optional** (additive — the schema version is
unchanged) and appears only when a scenario ran with a throttle
controller attached (``ModelConfig.throttle`` mode ``advise`` or
``enforce``): it is the summed
:meth:`~repro.mpc.throttle.ThrottleController.summary` digest over the
sweep.  Scenarios without throttling produce byte-identical artifacts to
builds that predate the block.

Changes from ``repro.bench/1``:

* every per-point ledger contributes a ``<prefix>_max_memory`` column —
  the highest per-machine memory high-water mark of that run, the model's
  second budget;
* a required ``totals`` roll-up (rounds / words / max_memory / violations
  summed resp. maxed over the sweep's ledgers) feeds the ``suite.json``
  aggregate;
* the per-point ``<prefix>_wall_s`` columns are gone: artifacts are
  **byte-deterministic** — the same scenario, seed and sizing produce the
  same bytes whether run serially or via ``--jobs N`` — and wall-clock
  noise broke that.  Timing stays available interactively through
  ``RoundLedger.note_stats`` / ``hottest_notes``.

Rows hold only JSON scalars (numbers, strings, booleans, null).  The
schema is additive: readers must ignore unknown keys, and any breaking
change bumps the version suffix.  ``docs/REPRODUCTION.md`` is generated
from these artifacts by ``python -m repro report``.

``suite.json`` (schema ``repro.bench.suite/1``) is the cross-scenario
roll-up written by ``python -m repro bench all``: one row per scenario
with its ``totals``, so dashboards and CI can watch the whole matrix
without parsing one file per scenario.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "SUITE_SCHEMA_VERSION",
    "THROTTLE_COUNT_KEYS",
    "ArtifactError",
    "artifact_path",
    "load_artifact",
    "load_results_dir",
    "load_suite",
    "suite_path",
    "text_header",
    "validate_artifact",
    "validate_suite",
    "write_artifact",
    "write_suite",
]

SCHEMA_VERSION = "repro.bench/2"
SUITE_SCHEMA_VERSION = "repro.bench.suite/1"

#: The per-scenario roll-up counters carried in ``totals`` and aggregated
#: into ``suite.json``.
TOTAL_KEYS = ("rounds", "words", "max_memory", "violations")

SUITE_FILENAME = "suite.json"


def text_header(experiment: str) -> str:
    """The header line stamped onto persisted text tables, correlating
    them with the JSON artifact of the same experiment."""
    return f"# schema: {SCHEMA_VERSION}  experiment: {experiment}\n"

_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "scenario": str,
    "title": str,
    "group": str,
    "problem": str,
    "graph_family": str,
    "regimes": list,
    "axis": str,
    "quick": bool,
    "columns": list,
    "rows": list,
    "totals": dict,
}

_SCALAR = (int, float, str, bool, type(None))


class ArtifactError(ValueError):
    """A benchmark artifact does not conform to the schema."""


def _check_totals(totals: Any, source: str) -> None:
    for key in TOTAL_KEYS:
        if key not in totals:
            raise ArtifactError(f"{source}: totals missing key {key!r}")
        if not isinstance(totals[key], int) or isinstance(totals[key], bool):
            raise ArtifactError(
                f"{source}: totals key {key!r} must be an integer, "
                f"got {type(totals[key]).__name__}"
            )


def validate_artifact(obj: Any, source: str = "artifact") -> dict[str, Any]:
    """Check *obj* against schema ``repro.bench/2``; return it unchanged.

    Raises :class:`ArtifactError` naming the offending key on failure.
    """
    if not isinstance(obj, dict):
        raise ArtifactError(f"{source}: expected a JSON object, got {type(obj).__name__}")
    for key, kind in _REQUIRED.items():
        if key not in obj:
            raise ArtifactError(f"{source}: missing required key {key!r}")
        if not isinstance(obj[key], kind):
            raise ArtifactError(
                f"{source}: key {key!r} must be {kind.__name__}, "
                f"got {type(obj[key]).__name__}"
            )
    if obj["schema"] != SCHEMA_VERSION:
        raise ArtifactError(
            f"{source}: schema {obj['schema']!r} != {SCHEMA_VERSION!r}"
        )
    if not all(isinstance(r, str) for r in obj["regimes"]):
        raise ArtifactError(f"{source}: regimes must be strings")
    if not all(isinstance(c, str) for c in obj["columns"]):
        raise ArtifactError(f"{source}: columns must be strings")
    for index, row in enumerate(obj["rows"]):
        if not isinstance(row, dict):
            raise ArtifactError(f"{source}: row {index} is not an object")
        for key, value in row.items():
            if not isinstance(value, _SCALAR):
                raise ArtifactError(
                    f"{source}: row {index} key {key!r} holds non-scalar "
                    f"{type(value).__name__}"
                )
    _check_totals(obj["totals"], source)
    if "throttle" in obj:
        _check_throttle(obj["throttle"], source)
    return obj


#: Counter keys of the optional ``throttle`` block (summed over the sweep).
THROTTLE_COUNT_KEYS = (
    "splits",
    "extra_rounds",
    "overload_rounds",
    "fanout_events",
    "sample_rate_events",
    "bank_events",
    "events",
)


def _check_throttle(block: Any, source: str) -> None:
    if not isinstance(block, dict):
        raise ArtifactError(f"{source}: 'throttle' must be an object")
    mode = block.get("mode")
    if mode not in ("advise", "enforce"):
        raise ArtifactError(
            f"{source}: throttle mode must be 'advise' or 'enforce', got {mode!r}"
        )
    headroom = block.get("headroom")
    if not isinstance(headroom, (int, float)) or isinstance(headroom, bool):
        raise ArtifactError(f"{source}: throttle headroom must be a number")
    for key in THROTTLE_COUNT_KEYS:
        value = block.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ArtifactError(
                f"{source}: throttle key {key!r} must be an integer, "
                f"got {type(value).__name__}"
            )


def validate_suite(obj: Any, source: str = "suite") -> dict[str, Any]:
    """Check *obj* against schema ``repro.bench.suite/1``; return it."""
    if not isinstance(obj, dict):
        raise ArtifactError(f"{source}: expected a JSON object, got {type(obj).__name__}")
    if obj.get("schema") != SUITE_SCHEMA_VERSION:
        raise ArtifactError(
            f"{source}: schema {obj.get('schema')!r} != {SUITE_SCHEMA_VERSION!r}"
        )
    if not isinstance(obj.get("quick"), bool):
        raise ArtifactError(f"{source}: key 'quick' must be bool")
    scenarios = obj.get("scenarios")
    if not isinstance(scenarios, list):
        raise ArtifactError(f"{source}: key 'scenarios' must be a list")
    for index, row in enumerate(scenarios):
        if not isinstance(row, dict):
            raise ArtifactError(f"{source}: scenario row {index} is not an object")
        for key in ("scenario", "group"):
            if not isinstance(row.get(key), str):
                raise ArtifactError(
                    f"{source}: scenario row {index} key {key!r} must be str"
                )
        points = row.get("points")
        if not isinstance(points, int) or isinstance(points, bool):
            raise ArtifactError(
                f"{source}: scenario row {index} key 'points' must be int"
            )
        _check_totals(row, f"{source}: scenario row {index}")
    return obj


def artifact_path(results_dir: pathlib.Path | str, scenario: str) -> pathlib.Path:
    return pathlib.Path(results_dir) / f"{scenario}.json"


def suite_path(results_dir: pathlib.Path | str) -> pathlib.Path:
    return pathlib.Path(results_dir) / SUITE_FILENAME


def _write_json(path: pathlib.Path | str, obj: dict[str, Any]) -> None:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(obj, indent=2, sort_keys=True) + "\n")


def write_artifact(path: pathlib.Path | str, obj: dict[str, Any]) -> None:
    """Validate and persist one artifact (stable key order, trailing
    newline, so regeneration is byte-deterministic)."""
    validate_artifact(obj, source=str(path))
    _write_json(path, obj)


def write_suite(path: pathlib.Path | str, obj: dict[str, Any]) -> None:
    """Validate and persist the suite roll-up artifact."""
    validate_suite(obj, source=str(path))
    _write_json(path, obj)


def load_artifact(path: pathlib.Path | str) -> dict[str, Any]:
    """Load and validate one artifact."""
    path = pathlib.Path(path)
    try:
        obj = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: invalid JSON ({exc})") from exc
    return validate_artifact(obj, source=str(path))


def load_suite(path: pathlib.Path | str) -> dict[str, Any]:
    """Load and validate the suite roll-up artifact."""
    path = pathlib.Path(path)
    try:
        obj = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: invalid JSON ({exc})") from exc
    return validate_suite(obj, source=str(path))


def load_results_dir(results_dir: pathlib.Path | str) -> list[dict[str, Any]]:
    """Load every per-scenario ``*.json`` artifact in *results_dir*, sorted
    by scenario name (the deterministic order the report generator relies
    on).  The ``suite.json`` roll-up lives in the same directory but has
    its own schema and loader (:func:`load_suite`)."""
    results_dir = pathlib.Path(results_dir)
    artifacts = [
        load_artifact(p)
        for p in sorted(results_dir.glob("*.json"))
        if p.name != SUITE_FILENAME
    ]
    return sorted(artifacts, key=lambda a: a["scenario"])
