"""Versioned JSON artifacts for benchmark runs.

Schema ``repro.bench/1`` — one JSON object per scenario run, written to
``benchmarks/results/<scenario>.json`` next to the legacy text table:

```
{
  "schema":       "repro.bench/1",
  "scenario":     "table1_mst",            # registry name
  "title":        "...",                   # human heading
  "group":        "table1",                # table1|figure|theorem|ablation|workload
  "problem":      "mst",                   # repro.analysis.theory key
  "graph_family": "random_connected",      # repro.graph.generators family
  "regimes":      ["heterogeneous", ...],  # ModelConfig regimes exercised
  "axis":         "m/n",                   # sweep-axis column name
  "quick":        false,                   # smoke sizing?
  "columns":      ["m/n", "het_rounds", ...],
  "rows":         [{"m/n": 2, "het_rounds": 9, ...}, ...]
}
```

Rows hold only JSON scalars (numbers, strings, booleans, null).  The
schema is additive: readers must ignore unknown keys, and any breaking
change bumps the version suffix.  ``docs/REPRODUCTION.md`` is generated
from these artifacts by ``python -m repro report``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactError",
    "artifact_path",
    "load_artifact",
    "load_results_dir",
    "text_header",
    "validate_artifact",
    "write_artifact",
]

SCHEMA_VERSION = "repro.bench/1"


def text_header(experiment: str) -> str:
    """The header line stamped onto persisted text tables, correlating
    them with the JSON artifact of the same experiment."""
    return f"# schema: {SCHEMA_VERSION}  experiment: {experiment}\n"

_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "scenario": str,
    "title": str,
    "group": str,
    "problem": str,
    "graph_family": str,
    "regimes": list,
    "axis": str,
    "quick": bool,
    "columns": list,
    "rows": list,
}

_SCALAR = (int, float, str, bool, type(None))


class ArtifactError(ValueError):
    """A benchmark artifact does not conform to the schema."""


def validate_artifact(obj: Any, source: str = "artifact") -> dict[str, Any]:
    """Check *obj* against schema ``repro.bench/1``; return it unchanged.

    Raises :class:`ArtifactError` naming the offending key on failure.
    """
    if not isinstance(obj, dict):
        raise ArtifactError(f"{source}: expected a JSON object, got {type(obj).__name__}")
    for key, kind in _REQUIRED.items():
        if key not in obj:
            raise ArtifactError(f"{source}: missing required key {key!r}")
        if not isinstance(obj[key], kind):
            raise ArtifactError(
                f"{source}: key {key!r} must be {kind.__name__}, "
                f"got {type(obj[key]).__name__}"
            )
    if obj["schema"] != SCHEMA_VERSION:
        raise ArtifactError(
            f"{source}: schema {obj['schema']!r} != {SCHEMA_VERSION!r}"
        )
    if not all(isinstance(r, str) for r in obj["regimes"]):
        raise ArtifactError(f"{source}: regimes must be strings")
    if not all(isinstance(c, str) for c in obj["columns"]):
        raise ArtifactError(f"{source}: columns must be strings")
    for index, row in enumerate(obj["rows"]):
        if not isinstance(row, dict):
            raise ArtifactError(f"{source}: row {index} is not an object")
        for key, value in row.items():
            if not isinstance(value, _SCALAR):
                raise ArtifactError(
                    f"{source}: row {index} key {key!r} holds non-scalar "
                    f"{type(value).__name__}"
                )
    return obj


def artifact_path(results_dir: pathlib.Path | str, scenario: str) -> pathlib.Path:
    return pathlib.Path(results_dir) / f"{scenario}.json"


def write_artifact(path: pathlib.Path | str, obj: dict[str, Any]) -> None:
    """Validate and persist one artifact (stable key order, trailing
    newline, so regeneration is byte-deterministic)."""
    validate_artifact(obj, source=str(path))
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(obj, indent=2, sort_keys=True) + "\n")


def load_artifact(path: pathlib.Path | str) -> dict[str, Any]:
    """Load and validate one artifact."""
    path = pathlib.Path(path)
    try:
        obj = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: invalid JSON ({exc})") from exc
    return validate_artifact(obj, source=str(path))


def load_results_dir(results_dir: pathlib.Path | str) -> list[dict[str, Any]]:
    """Load every ``*.json`` artifact in *results_dir*, sorted by scenario
    name (the deterministic order the report generator relies on)."""
    results_dir = pathlib.Path(results_dir)
    artifacts = [load_artifact(p) for p in sorted(results_dir.glob("*.json"))]
    return sorted(artifacts, key=lambda a: a["scenario"])
