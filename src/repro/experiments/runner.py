"""Executes :class:`~repro.experiments.scenario.Scenario` objects.

One :class:`Runner` replaces the hand-rolled sweep loop every benchmark
script used to carry: it iterates the scenario's sweep axis, seeds a
deterministic RNG per point, lets the scenario measure the point, pulls
round/word/wall-clock aggregates out of any :class:`~repro.mpc.ledger.
RoundLedger` the measurement hands back, and packages the rows as a text
table plus a schema-versioned JSON artifact (see ``artifacts.py``).
"""

from __future__ import annotations

import pathlib
import random
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..analysis import render_table
from .artifacts import SCHEMA_VERSION, artifact_path, text_header, write_artifact
from .scenario import Scenario

__all__ = ["Runner", "ScenarioRun", "ledger_columns"]


def ledger_columns(ledger: Any, prefix: str = "") -> dict[str, Any]:
    """Word and wall-clock aggregates of one :class:`RoundLedger`,
    as artifact-ready columns (``NoteStats.elapsed`` summed over notes)."""
    tag = f"{prefix}_" if prefix else ""
    return {
        f"{tag}words": ledger.total_words,
        f"{tag}wall_s": round(ledger.wall_time, 3),
    }


@dataclass
class ScenarioRun:
    """The outcome of running one scenario: rows plus render helpers."""

    scenario: Scenario
    rows: list[dict[str, Any]]
    quick: bool
    columns: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.columns:
            self.columns = tuple(self.scenario.columns)

    def to_artifact(self) -> dict[str, Any]:
        s = self.scenario
        return {
            "schema": SCHEMA_VERSION,
            "scenario": s.name,
            "title": s.title,
            "group": s.group,
            "problem": s.problem,
            "graph_family": s.graph_family,
            "regimes": list(s.regimes),
            "axis": s.axis,
            "quick": self.quick,
            "columns": list(self.columns),
            "rows": self.rows,
        }

    def render_text(self) -> str:
        """The legacy text-table artifact, now carrying a schema header so
        text and JSON outputs stay correlated."""
        title = self.scenario.title
        return (
            f"{text_header(self.scenario.name)}{title}\n{'=' * len(title)}\n"
            f"{render_table(self.rows, self.columns)}\n"
        )


class Runner:
    """Runs scenarios and persists their artifacts.

    Args:
        results_dir: where ``<scenario>.txt`` / ``<scenario>.json`` land
            (``benchmarks/results`` for real runs, a scratch directory for
            smoke runs).
        seed: base seed mixed into every per-point RNG.
    """

    def __init__(self, results_dir: pathlib.Path | str | None = None, seed: int = 0):
        self.results_dir = pathlib.Path(results_dir) if results_dir else None
        self.seed = seed

    def point_rng(self, scenario: Scenario, index: int) -> random.Random:
        return random.Random(f"{self.seed}:{scenario.name}:{index}")

    def run(self, scenario: Scenario, quick: bool = False) -> ScenarioRun:
        """Execute one scenario's sweep; returns the collected rows.

        Shape checks (``scenario.check``) run on full sweeps only: quick
        sweeps are sized for smoke coverage, not asymptotics.
        """
        rows = []
        extra_columns: list[str] = []
        for index, point in enumerate(scenario.sweep(quick)):
            row = scenario.measure(point, self.point_rng(scenario, index), quick)
            ledgers = row.pop("_ledgers", None) or {}
            for prefix, ledger in ledgers.items():
                for key, value in ledger_columns(ledger, prefix).items():
                    row[key] = value
                    if key not in extra_columns:
                        extra_columns.append(key)
            rows.append(row)
        columns = tuple(scenario.columns) + tuple(
            c for c in extra_columns if c not in scenario.columns
        )
        run = ScenarioRun(scenario=scenario, rows=rows, quick=quick, columns=columns)
        if scenario.check is not None and not quick:
            scenario.check(rows)
        return run

    def persist(self, run: ScenarioRun, json_artifact: bool = True) -> list[pathlib.Path]:
        """Write the text table and (optionally) the JSON artifact."""
        if self.results_dir is None:
            return []
        self.results_dir.mkdir(parents=True, exist_ok=True)
        written = []
        text_path = self.results_dir / f"{run.scenario.name}.txt"
        text_path.write_text(run.render_text())
        written.append(text_path)
        if json_artifact:
            json_path = artifact_path(self.results_dir, run.scenario.name)
            write_artifact(json_path, run.to_artifact())
            written.append(json_path)
        return written

    def run_many(
        self, scenarios: Iterable[Scenario], quick: bool = False,
        json_artifact: bool = True, echo=None,
    ) -> list[ScenarioRun]:
        """Run several scenarios, persisting each as it completes."""
        runs = []
        for scenario in scenarios:
            run = self.run(scenario, quick=quick)
            self.persist(run, json_artifact=json_artifact)
            if echo is not None:
                echo(run)
            runs.append(run)
        return runs
