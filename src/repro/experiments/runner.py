"""Executes :class:`~repro.experiments.scenario.Scenario` objects.

One :class:`Runner` replaces the hand-rolled sweep loop every benchmark
script used to carry: it iterates the scenario's sweep axis, seeds a
deterministic RNG per point, lets the scenario measure the point, pulls
round/word/memory aggregates out of any :class:`~repro.mpc.ledger.
RoundLedger` the measurement hands back, and packages the rows as a text
table plus a schema-versioned JSON artifact (see ``artifacts.py``).

:class:`ParallelRunner` fans the same work out over a process pool — the
unit of work is one ``(scenario, sweep index)`` point, measured by the
exact function the serial path uses with the exact per-point RNG
derivation, so serial and parallel runs produce **byte-identical**
artifacts.  Scenario objects hold closures and never cross the process
boundary; workers re-resolve them by name from the registry.
"""

from __future__ import annotations

import pathlib
import random
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..analysis import render_table
from ..mpc.executor import mark_worker_process
from .artifacts import (
    SCHEMA_VERSION,
    SUITE_SCHEMA_VERSION,
    THROTTLE_COUNT_KEYS,
    TOTAL_KEYS,
    artifact_path,
    suite_path,
    text_header,
    write_artifact,
    write_suite,
)
from .scenario import Scenario

__all__ = [
    "MeasuredPoint",
    "ParallelRunner",
    "Runner",
    "ScenarioRun",
    "ledger_columns",
    "measure_point",
    "merge_throttle",
]


def ledger_columns(ledger: Any, prefix: str = "") -> dict[str, Any]:
    """Word and memory aggregates of one :class:`RoundLedger`, as
    artifact-ready columns.  Model-level quantities only — deterministic
    by construction, which is what keeps artifacts byte-identical across
    serial and parallel runs (wall-clock stays in the in-process ledger,
    see ``RoundLedger.hottest_notes``)."""
    tag = f"{prefix}_" if prefix else ""
    return {
        f"{tag}words": ledger.total_words,
        f"{tag}max_memory": ledger.max_memory,
    }


@dataclass
class MeasuredPoint:
    """One sweep point's outcome: the row, the ledger-derived columns (in
    first-seen order), the model-level totals for the suite roll-up, and
    the throttle digest (``None`` for unthrottled measurements)."""

    row: dict[str, Any]
    ledger_cols: dict[str, Any]
    totals: dict[str, int]
    throttle: dict[str, Any] | None = None


def merge_throttle(
    blocks: Iterable[dict[str, Any] | None]
) -> dict[str, Any] | None:
    """Fold per-point throttle digests into one artifact block: the policy
    fields come from the first digest (one policy per scenario), counters
    are summed and the peak load fractions maxed over the sweep.  Returns
    ``None`` when no point produced a digest — the artifact then carries
    no ``throttle`` key at all, keeping unthrottled artifacts
    byte-identical to pre-throttle builds."""
    blocks = [block for block in blocks if block]
    if not blocks:
        return None
    merged: dict[str, Any] = {
        key: blocks[0][key] for key in ("mode", "headroom", "window")
    }
    for key in THROTTLE_COUNT_KEYS:
        merged[key] = sum(int(block.get(key, 0)) for block in blocks)
    for key in ("peak_traffic_frac", "peak_memory_frac"):
        merged[key] = round(max(float(block.get(key, 0.0)) for block in blocks), 6)
    return merged


def measure_point(
    scenario: Scenario, index: int, point: Any, seed: int, quick: bool
) -> MeasuredPoint:
    """Measure one sweep point — the shared unit of work of both runners.

    The per-point RNG is derived from ``(seed, scenario, index)`` alone,
    so execution order (and process placement) cannot change results.
    """
    rng = random.Random(f"{seed}:{scenario.name}:{index}")
    row = scenario.measure(point, rng, quick)
    ledgers = row.pop("_ledgers", None) or {}
    throttle = row.pop("_throttle", None)
    ledger_cols: dict[str, Any] = {}
    totals = dict.fromkeys(TOTAL_KEYS, 0)
    for prefix, ledger in ledgers.items():
        ledger_cols.update(ledger_columns(ledger, prefix))
        summary = ledger.summary()
        totals["rounds"] += summary["rounds"]
        totals["words"] += summary["total_words"]
        totals["violations"] += summary["violations"]
        totals["max_memory"] = max(totals["max_memory"], summary["max_memory"])
    return MeasuredPoint(
        row=row, ledger_cols=ledger_cols, totals=totals, throttle=throttle
    )


def _pool_measure(name: str, index: int, seed: int, quick: bool) -> MeasuredPoint:
    """Process-pool entry point: re-resolve the scenario by name (Scenario
    objects hold closures and are not picklable) and measure one point."""
    from .registry import get_scenario

    scenario = get_scenario(name)
    point = scenario.sweep(quick)[index]
    return measure_point(scenario, index, point, seed, quick)


@dataclass
class ScenarioRun:
    """The outcome of running one scenario: rows plus render helpers."""

    scenario: Scenario
    rows: list[dict[str, Any]]
    quick: bool
    columns: tuple[str, ...] = field(default=())
    totals: dict[str, int] = field(default_factory=lambda: dict.fromkeys(TOTAL_KEYS, 0))
    throttle: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if not self.columns:
            self.columns = tuple(self.scenario.columns)

    def to_artifact(self) -> dict[str, Any]:
        s = self.scenario
        artifact = {
            "schema": SCHEMA_VERSION,
            "scenario": s.name,
            "title": s.title,
            "group": s.group,
            "problem": s.problem,
            "graph_family": s.graph_family,
            "regimes": list(s.regimes),
            "axis": s.axis,
            "quick": self.quick,
            "columns": list(self.columns),
            "rows": self.rows,
            "totals": dict(self.totals),
        }
        if self.throttle is not None:
            artifact["throttle"] = dict(self.throttle)
        return artifact

    def render_text(self) -> str:
        """The legacy text-table artifact, now carrying a schema header so
        text and JSON outputs stay correlated."""
        title = self.scenario.title
        return (
            f"{text_header(self.scenario.name)}{title}\n{'=' * len(title)}\n"
            f"{render_table(self.rows, self.columns)}\n"
        )


class Runner:
    """Runs scenarios serially and persists their artifacts.

    Args:
        results_dir: where ``<scenario>.txt`` / ``<scenario>.json`` land
            (``benchmarks/results`` for real runs, a scratch directory for
            smoke runs).
        seed: base seed mixed into every per-point RNG.
    """

    def __init__(self, results_dir: pathlib.Path | str | None = None, seed: int = 0):
        self.results_dir = pathlib.Path(results_dir) if results_dir else None
        self.seed = seed

    def point_rng(self, scenario: Scenario, index: int) -> random.Random:
        return random.Random(f"{self.seed}:{scenario.name}:{index}")

    def _assemble(
        self, scenario: Scenario, measured: list[MeasuredPoint], quick: bool
    ) -> ScenarioRun:
        """Merge per-point outcomes (in sweep order) into one run — the
        single code path both runners go through, so artifact bytes cannot
        depend on how the points were executed."""
        rows = []
        extra_columns: list[str] = []
        totals = dict.fromkeys(TOTAL_KEYS, 0)
        for outcome in measured:
            row = outcome.row
            for key, value in outcome.ledger_cols.items():
                row[key] = value
                if key not in extra_columns:
                    extra_columns.append(key)
            rows.append(row)
            for key in TOTAL_KEYS:
                if key == "max_memory":
                    totals[key] = max(totals[key], outcome.totals[key])
                else:
                    totals[key] += outcome.totals[key]
        columns = tuple(scenario.columns) + tuple(
            c for c in extra_columns if c not in scenario.columns
        )
        run = ScenarioRun(
            scenario=scenario, rows=rows, quick=quick, columns=columns,
            totals=totals,
            throttle=merge_throttle(outcome.throttle for outcome in measured),
        )
        if scenario.check is not None and not quick:
            scenario.check(rows)
        return run

    def run(self, scenario: Scenario, quick: bool = False) -> ScenarioRun:
        """Execute one scenario's sweep; returns the collected rows.

        Shape checks (``scenario.check``) run on full sweeps only: quick
        sweeps are sized for smoke coverage, not asymptotics.
        """
        measured = [
            measure_point(scenario, index, point, self.seed, quick)
            for index, point in enumerate(scenario.sweep(quick))
        ]
        return self._assemble(scenario, measured, quick)

    def persist(self, run: ScenarioRun, json_artifact: bool = True) -> list[pathlib.Path]:
        """Write the text table and (optionally) the JSON artifact."""
        if self.results_dir is None:
            return []
        self.results_dir.mkdir(parents=True, exist_ok=True)
        written = []
        text_path = self.results_dir / f"{run.scenario.name}.txt"
        text_path.write_text(run.render_text())
        written.append(text_path)
        if json_artifact:
            json_path = artifact_path(self.results_dir, run.scenario.name)
            write_artifact(json_path, run.to_artifact())
            written.append(json_path)
        return written

    def persist_suite(self, runs: Iterable[ScenarioRun]) -> pathlib.Path | None:
        """Write the cross-scenario ``suite.json`` roll-up: one row per
        scenario with its rounds/words/max-memory/violations totals."""
        if self.results_dir is None:
            return None
        runs = sorted(runs, key=lambda run: run.scenario.name)
        obj = {
            "schema": SUITE_SCHEMA_VERSION,
            "quick": any(run.quick for run in runs),
            "scenarios": [
                {
                    "scenario": run.scenario.name,
                    "group": run.scenario.group,
                    "points": len(run.rows),
                    **{key: run.totals[key] for key in TOTAL_KEYS},
                }
                for run in runs
            ],
        }
        path = suite_path(self.results_dir)
        write_suite(path, obj)
        return path

    def run_many(
        self, scenarios: Iterable[Scenario], quick: bool = False,
        json_artifact: bool = True, echo=None,
    ) -> list[ScenarioRun]:
        """Run several scenarios, persisting each as it completes."""
        runs = []
        for scenario in scenarios:
            run = self.run(scenario, quick=quick)
            self.persist(run, json_artifact=json_artifact)
            if echo is not None:
                echo(run)
            runs.append(run)
        return runs


class ParallelRunner(Runner):
    """Runs scenario sweeps across a process pool (``bench --jobs N``).

    Every ``(scenario, index)`` pair is one pool task; results are
    reassembled in sweep order through the same ``_assemble`` path as the
    serial runner, so the persisted artifacts are byte-identical to a
    serial run with the same seed and sizing.

    Workers are marked as such (:func:`~repro.mpc.executor.
    mark_worker_process` runs as the pool initializer), so any cluster a
    scenario builds inside a worker resolves to a ``SerialExecutor`` even
    under ``REPRO_EXECUTOR=process`` — ``--jobs`` takes precedence over
    ``--executor``, and a pool of scenario points never forks a second
    process pool per worker.
    """

    def __init__(
        self,
        results_dir: pathlib.Path | str | None = None,
        seed: int = 0,
        jobs: int = 2,
    ):
        super().__init__(results_dir=results_dir, seed=seed)
        self.jobs = max(1, int(jobs))

    def run_many(
        self, scenarios: Iterable[Scenario], quick: bool = False,
        json_artifact: bool = True, echo=None,
    ) -> list[ScenarioRun]:
        scenarios = list(scenarios)
        tasks = [
            (scenario.name, index)
            for scenario in scenarios
            for index in range(len(scenario.sweep(quick)))
        ]
        measured: dict[tuple[str, int], MeasuredPoint] = {}
        with ProcessPoolExecutor(
            max_workers=self.jobs, initializer=mark_worker_process
        ) as pool:
            pending = {
                pool.submit(_pool_measure, name, index, self.seed, quick): (name, index)
                for name, index in tasks
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    measured[pending.pop(future)] = future.result()
        runs = []
        for scenario in scenarios:
            outcomes = [
                measured[(scenario.name, index)]
                for index in range(len(scenario.sweep(quick)))
            ]
            run = self._assemble(scenario, outcomes, quick)
            self.persist(run, json_artifact=json_artifact)
            if echo is not None:
                echo(run)
            runs.append(run)
        return runs
