"""The declarative unit of the experiment subsystem: a :class:`Scenario`.

A scenario describes one benchmark — a paper table row, figure, ablation,
or workload-matrix cell — as data: which problem it measures, which
:class:`~repro.mpc.ModelConfig` regimes it exercises, which graph family
it runs on, the sweep axis with its full and ``--quick`` point sets, and
how to measure one sweep point.  The :class:`~repro.experiments.runner.
Runner` executes scenarios uniformly and emits text tables plus versioned
JSON artifacts; nothing in this module runs anything.

Adding a benchmark is a registry entry (see ``registry.py``), not a new
script.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..mpc import ModelConfig

__all__ = ["GROUPS", "REGIMES", "Scenario", "regime_config"]

#: Scenario groups, in the order the generated reproduction guide lists
#: them.  ``large`` is the large-n regime opened by the columnar round
#: engine: the Table-1 flagship problems and the workload matrix at
#: 10-50x the classic sweep sizes.  ``robustness`` pins the adaptive
#: throttling layer: adversarial inputs in a deliberately tight capacity
#: window, run with throttling off / advise / enforce.
GROUPS = (
    "table1", "figure", "theorem", "ablation", "workload", "large", "huge",
    "robustness",
)

#: Named ``ModelConfig`` factories — the regimes a scenario can declare.
#: Each takes the workload's ``n``/``m`` (plus regime-specific keywords)
#: and returns a configuration.
REGIMES: dict[str, Callable[..., ModelConfig]] = {
    "heterogeneous": lambda n, m, **kw: ModelConfig.heterogeneous(n=n, m=m, **kw),
    "sublinear": lambda n, m, **kw: ModelConfig.sublinear(n=n, m=m, **kw),
    "near_linear": lambda n, m, **kw: ModelConfig.near_linear(n=n, m=m, **kw),
    "superlinear": lambda n, m, f=0.5, **kw: ModelConfig.heterogeneous_superlinear(
        n=n, m=m, f=f, **kw
    ),
}


def regime_config(regime: str, n: int, m: int, **kw: Any) -> ModelConfig:
    """Instantiate the named *regime* for an ``(n, m)`` workload."""
    try:
        factory = REGIMES[regime]
    except KeyError:
        raise ValueError(f"unknown regime {regime!r}; known: {sorted(REGIMES)}")
    return factory(n=n, m=m, **kw)


@dataclass(frozen=True)
class Scenario:
    """A declarative benchmark description.

    Attributes:
        name: artifact/experiment identifier (``benchmarks/results/<name>``).
        title: one-line human heading for tables and the generated guide.
        group: one of :data:`GROUPS`.
        problem: problem key as used by ``repro.analysis.theory``
            (``"mst"``, ``"connectivity"``, ...).
        graph_family: the ``repro.graph.generators`` family the workload
            draws from.
        regimes: the :data:`REGIMES` names this scenario exercises.
        axis: name of the sweep-axis column.
        points: the full sweep.
        quick_points: the ``--quick`` (CI smoke) sweep; defaults to
            ``points``.
        measure: ``measure(point, rng, quick) -> row dict`` — builds the
            workload, runs the algorithm(s), and returns one row of
            JSON-serializable metrics.  The special key ``"_ledgers"``
            (a ``{label: RoundLedger}`` dict) is consumed by the Runner,
            which replaces it with per-label word counts and a wall-clock
            column.
        columns: column order for the rendered text table.
        check: optional ``check(rows) -> None`` asserting the growth shape
            the paper predicts (runs on full sweeps only — quick sweeps
            are too small to exhibit asymptotic shapes).
        paper_ref: the paper statement being reproduced (free text).
    """

    name: str
    title: str
    group: str
    problem: str
    graph_family: str
    regimes: tuple[str, ...]
    axis: str
    points: tuple
    measure: Callable[[Any, random.Random, bool], dict[str, Any]] = field(repr=False)
    columns: tuple[str, ...]
    quick_points: tuple | None = None
    check: Callable[[Sequence[dict[str, Any]]], None] | None = field(
        default=None, repr=False
    )
    paper_ref: str = ""

    def __post_init__(self) -> None:
        if self.group not in GROUPS:
            raise ValueError(f"unknown group {self.group!r}; known: {GROUPS}")
        unknown = set(self.regimes) - set(REGIMES)
        if unknown:
            raise ValueError(f"unknown regimes {sorted(unknown)} in {self.name}")
        if not self.points:
            raise ValueError(f"scenario {self.name} has an empty sweep")

    def sweep(self, quick: bool) -> tuple:
        """The sweep points for a full or ``--quick`` run."""
        if quick and self.quick_points is not None:
            return self.quick_points
        return self.points
