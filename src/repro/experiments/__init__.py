"""Declarative experiment subsystem.

``Scenario`` (scenario.py) describes one benchmark as data; the registry
(registry.py) declares every Table-1 / figure / theorem / ablation
benchmark plus the workload matrix; ``Runner`` (runner.py) executes
scenarios serially and ``ParallelRunner`` fans the sweep points out over
a process pool (byte-identical artifacts either way); both emit text
tables plus ``repro.bench/2`` JSON artifacts and the ``suite.json``
roll-up (artifacts.py); report.py regenerates ``docs/REPRODUCTION.md``
from those artifacts.  The CLI front ends are ``python -m repro bench``
(``--jobs N`` for the parallel path) and ``python -m repro report``.
"""

from .artifacts import (
    SCHEMA_VERSION,
    SUITE_SCHEMA_VERSION,
    ArtifactError,
    load_artifact,
    load_results_dir,
    load_suite,
    suite_path,
    validate_artifact,
    validate_suite,
    write_artifact,
    write_suite,
)
from .registry import SCENARIOS, all_scenarios, get_scenario, scenario_names
from .report import check_report, render_report, write_report
from .runner import (
    MeasuredPoint,
    ParallelRunner,
    Runner,
    ScenarioRun,
    ledger_columns,
    measure_point,
)
from .scenario import GROUPS, REGIMES, Scenario, regime_config

__all__ = [
    "SCHEMA_VERSION",
    "SUITE_SCHEMA_VERSION",
    "ArtifactError",
    "load_artifact",
    "load_results_dir",
    "load_suite",
    "suite_path",
    "validate_artifact",
    "validate_suite",
    "write_artifact",
    "write_suite",
    "SCENARIOS",
    "all_scenarios",
    "get_scenario",
    "scenario_names",
    "check_report",
    "render_report",
    "write_report",
    "MeasuredPoint",
    "ParallelRunner",
    "Runner",
    "ScenarioRun",
    "ledger_columns",
    "measure_point",
    "GROUPS",
    "REGIMES",
    "Scenario",
    "regime_config",
]
