"""Declarative experiment subsystem.

``Scenario`` (scenario.py) describes one benchmark as data; the registry
(registry.py) declares every Table-1 / figure / theorem / ablation
benchmark plus the workload matrix; ``Runner`` (runner.py) executes
scenarios and emits text tables plus ``repro.bench/1`` JSON artifacts
(artifacts.py); report.py regenerates ``docs/REPRODUCTION.md`` from those
artifacts.  The CLI front ends are ``python -m repro bench`` and
``python -m repro report``.
"""

from .artifacts import (
    SCHEMA_VERSION,
    ArtifactError,
    load_artifact,
    load_results_dir,
    validate_artifact,
    write_artifact,
)
from .registry import SCENARIOS, all_scenarios, get_scenario, scenario_names
from .report import check_report, render_report, write_report
from .runner import Runner, ScenarioRun, ledger_columns
from .scenario import GROUPS, REGIMES, Scenario, regime_config

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactError",
    "load_artifact",
    "load_results_dir",
    "validate_artifact",
    "write_artifact",
    "SCENARIOS",
    "all_scenarios",
    "get_scenario",
    "scenario_names",
    "check_report",
    "render_report",
    "write_report",
    "Runner",
    "ScenarioRun",
    "ledger_columns",
    "GROUPS",
    "REGIMES",
    "Scenario",
    "regime_config",
]
