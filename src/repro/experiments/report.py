"""Generates ``docs/REPRODUCTION.md`` from the JSON benchmark artifacts.

The reproduction guide is *derived*, never hand-edited: ``python -m repro
report`` reads every per-scenario ``benchmarks/results/*.json`` artifact
(schema ``repro.bench/2``), validates it, and renders a deterministic markdown
document — same artifacts in, byte-identical document out.  CI runs
``python -m repro report --check`` to fail when the committed guide has
drifted from the committed artifacts.
"""

from __future__ import annotations

import pathlib
from typing import Any, Sequence

from ..analysis import render_table
from .artifacts import SCHEMA_VERSION, load_results_dir
from .scenario import GROUPS

__all__ = [
    "DEFAULT_DOC_PATH",
    "DEFAULT_RESULTS_DIR",
    "check_report",
    "render_report",
    "write_report",
]

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_RESULTS_DIR = _REPO_ROOT / "benchmarks" / "results"
DEFAULT_DOC_PATH = _REPO_ROOT / "docs" / "REPRODUCTION.md"

_GROUP_HEADINGS = {
    "table1": "Table 1 rows",
    "figure": "Figures",
    "theorem": "Per-theorem experiments",
    "ablation": "Ablations",
    "workload": "Workload matrix",
    "large": "Large-n regime",
    "huge": "Huge-n regime",
    "robustness": "Robustness: adaptive throttling",
}


def _summary_rows(artifacts: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    return [
        {
            "scenario": a["scenario"],
            "group": a["group"],
            "problem": a["problem"],
            "graph_family": a["graph_family"],
            "regimes": ", ".join(a["regimes"]),
            "axis": a["axis"],
            "points": len(a["rows"]),
            "rounds": a["totals"]["rounds"],
            "words": a["totals"]["words"],
            "max_memory": a["totals"]["max_memory"],
        }
        for a in artifacts
    ]


def render_report(artifacts: Sequence[dict[str, Any]]) -> str:
    """Render the reproduction guide for *artifacts* (already validated)."""
    families = sorted({a["graph_family"] for a in artifacts})
    regimes = sorted({r for a in artifacts for r in a["regimes"]})
    lines: list[str] = [
        "# Reproduction guide",
        "",
        "<!-- GENERATED FILE — do not edit.  Regenerate with",
        "     `python -m repro report` after `python -m repro bench all --json`. -->",
        "",
        f"Every experiment below is a declarative scenario in "
        f"`src/repro/experiments/registry.py`, executed by the shared "
        f"`Runner` and persisted as a schema-versioned JSON artifact "
        f"(`{SCHEMA_VERSION}`) under `benchmarks/results/`.  This guide is "
        f"generated from those artifacts.",
        "",
        f"**Coverage:** {len(artifacts)} scenarios, "
        f"{len(families)} graph families ({', '.join(families)}), "
        f"{len(regimes)} regimes ({', '.join(regimes)}).",
        "",
        "## How to reproduce",
        "",
        "```bash",
        "python -m repro bench --list            # enumerate scenarios",
        "python -m repro bench table1_mst        # run one (prints the table)",
        "python -m repro bench all --json        # run everything, write artifacts",
        "python -m repro bench all --json --jobs 4   # same bytes, process pool",
        "python -m repro report                  # regenerate this document",
        "python -m repro report --check          # CI: fail if this doc is stale",
        "```",
        "",
        "`--quick` shrinks every sweep to CI smoke sizes and redirects",
        "artifacts to a `quick/` subdirectory of the results dir so",
        "committed full-run artifacts are never clobbered.  `--jobs N` fans",
        "the sweep points out over N processes; artifacts are deterministic",
        "and byte-identical to a serial run with the same seed and sizing.",
        "Running `all` also writes a `suite.json` roll-up (one row per",
        "scenario: rounds, words, max-memory, recorded violations).  The",
        "`*_max_memory` columns report the highest per-machine memory",
        "high-water mark of a run — the model's second budget, enforced by",
        "strict mode and recorded as ledger violations otherwise.  The",
        "paper-vs-measured semantics of",
        "each column are documented in the scenario's `measure` function;",
        "theorem-to-code pointers live in `docs/THEOREM_MAP.md`.  Whether",
        "the measured curves actually *grow* like the paper's bounds is",
        "checked by the asymptotic fit suite in the generated",
        "[COST_MODEL.md](COST_MODEL.md) (`python -m repro costmodel`).",
        "",
        "## Scenario summary",
        "",
    ]
    summary = _summary_rows(artifacts)
    lines.append("```")
    lines.append(render_table(
        summary,
        ["scenario", "group", "problem", "graph_family", "regimes", "axis",
         "points", "rounds", "words", "max_memory"],
    ))
    lines.append("```")
    for group in GROUPS:
        group_artifacts = [a for a in artifacts if a["group"] == group]
        if not group_artifacts:
            continue
        lines.append("")
        lines.append(f"## {_GROUP_HEADINGS.get(group, group)}")
        for a in group_artifacts:
            lines.append("")
            lines.append(f"### `{a['scenario']}`")
            lines.append("")
            lines.append(a["title"])
            lines.append("")
            lines.append(
                f"*Problem:* {a['problem']} · *graph family:* "
                f"{a['graph_family']} · *regimes:* {', '.join(a['regimes'])} · "
                f"*sweep axis:* `{a['axis']}`"
            )
            lines.append("")
            lines.append("```")
            # Wall-clock columns were dropped from the artifacts in
            # repro.bench/2 (timing noise broke byte-determinism); the
            # filter stays as a guard against any future non-model column.
            columns = [c for c in a["columns"] if not c.endswith("wall_s")]
            lines.append(render_table(a["rows"], columns))
            lines.append("```")
    lines.append("")
    return "\n".join(lines)


def write_report(
    results_dir: pathlib.Path | str = DEFAULT_RESULTS_DIR,
    doc_path: pathlib.Path | str = DEFAULT_DOC_PATH,
) -> pathlib.Path:
    """Regenerate the guide from *results_dir*; returns the written path."""
    artifacts = load_results_dir(results_dir)
    doc_path = pathlib.Path(doc_path)
    doc_path.parent.mkdir(parents=True, exist_ok=True)
    doc_path.write_text(render_report(artifacts))
    return doc_path


def check_report(
    results_dir: pathlib.Path | str = DEFAULT_RESULTS_DIR,
    doc_path: pathlib.Path | str = DEFAULT_DOC_PATH,
) -> list[str]:
    """Return a list of problems (empty = the committed guide is current)."""
    problems: list[str] = []
    doc_path = pathlib.Path(doc_path)
    try:
        artifacts = load_results_dir(results_dir)
    except Exception as exc:
        return [f"artifact validation failed: {exc}"]
    if not artifacts:
        problems.append(f"no JSON artifacts found in {results_dir}")
        return problems
    expected = render_report(artifacts)
    if not doc_path.exists():
        problems.append(f"{doc_path} is missing; run `python -m repro report`")
    elif doc_path.read_text() != expected:
        problems.append(
            f"{doc_path} is stale; run `python -m repro report` and commit"
        )
    return problems
