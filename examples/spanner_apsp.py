"""Spanners and approximate shortest paths (Section 4 + Corollary 4.2).

Scenario: a road-network-like graph (grid plus random shortcuts).  We build
O(k)-spanners for several k in O(1) rounds, watch the size/stretch
trade-off, then build the O(log n)-approximate APSP oracle — the spanner is
small enough to live on the large machine, which then answers any distance
query locally.

Run:  python examples/spanner_apsp.py
"""

import random

from repro.core.spanner import build_apsp_oracle, heterogeneous_spanner
from repro.graph import Graph, generators
from repro.graph.traversal import bfs_distances
from repro.graph.validation import spanner_stretch


def road_network(rng: random.Random) -> Graph:
    """A 10x10 grid with 80 random shortcut edges."""
    grid = generators.grid_graph(10, 10)
    edges = set(grid.edge_set())
    while len(edges) < grid.m + 80:
        u, v = rng.randrange(100), rng.randrange(100)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph(100, sorted(edges))


def main() -> None:
    rng = random.Random(7)
    graph = road_network(rng)
    print(f"road network: n={graph.n}, m={graph.m}\n")

    print("k   stretch-bound   size   measured-stretch   rounds")
    for k in (1, 2, 3):
        result = heterogeneous_spanner(graph, k=k, rng=random.Random(k))
        stretch = spanner_stretch(graph, result.edges)
        print(
            f"{k}   {result.stretch_bound:>13}   {result.size:>4}   "
            f"{stretch:>16.2f}   {result.rounds:>6}"
        )

    oracle = build_apsp_oracle(graph, rng=random.Random(42))
    print(
        f"\nAPSP oracle: k={oracle.spanner.k}, spanner size "
        f"{oracle.spanner.size} (vs m={graph.m}), {oracle.rounds} rounds"
    )
    source = 0
    truth = bfs_distances(graph, source)
    approx = oracle.distances_from(source)
    samples = [9, 55, 99]
    for target in samples:
        print(
            f"  dist({source}, {target}): true={truth[target]:.0f}  "
            f"oracle={approx[target]:.0f}  "
            f"(bound {oracle.stretch_bound}x)"
        )


if __name__ == "__main__":
    main()
