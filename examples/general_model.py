"""The generalized (S_sub, S_lin, S_sup)-Heterogeneous MPC model (Section 6)
and component-stable execution (footnote 1).

The conclusion of the paper proposes parameterizing deployments by the
*total memory of each machine class*.  This example:

1. builds the paper's model as the special case general(s_sub=m, s_lin=n);
2. scales up to several near-linear machines and to a superlinear machine
   (n^{1+f}), showing how the MST algorithm's phase structure reacts;
3. wraps maximal matching with the component-stability transform —
   connectivity first, then each component solved independently in
   parallel — on a disconnected input.

Run:  python examples/general_model.py
"""

import random

from repro.core import heterogeneous_matching, heterogeneous_mst, run_component_stable
from repro.graph import generators
from repro.graph.validation import is_maximal_matching, verify_mst
from repro.mpc import ModelConfig


def main() -> None:
    rng = random.Random(4)
    n, m = 120, 2400
    graph = generators.random_connected_graph(n, m, rng).with_unique_weights(rng)

    print("deployment sweep (Section 6 general model), same MST input:\n")
    print("deployment                          steps  rounds  verified")
    deployments = [
        ("paper: (S_sub=m, S_lin=n)", ModelConfig.general(n=n, m=m, s_sub=m, s_lin=n)),
        ("3 near-linear machines", ModelConfig.general(n=n, m=m, s_sub=m, s_lin=3 * n)),
        ("superlinear: S_sup=n^1.5", ModelConfig.general(n=n, m=m, s_sub=m, s_sup=int(n**1.5))),
    ]
    for label, config in deployments:
        result = heterogeneous_mst(graph, config=config, rng=random.Random(1))
        print(
            f"{label:<35} {result.boruvka_steps:>5}  {result.rounds:>6}  "
            f"{verify_mst(graph, result.edges)}"
        )

    print("\ncomponent-stable matching on a 4-component graph:")
    disconnected = generators.planted_components_graph(100, 4, 120, rng)
    wrapped = run_component_stable(
        disconnected, heterogeneous_matching, rng=random.Random(2)
    )
    matching = wrapped.combined_edges(lambda r: r.matching)
    print(
        f"  components={wrapped.num_components}, "
        f"connectivity rounds={wrapped.connectivity_rounds}, "
        f"slowest component rounds={wrapped.component_rounds}, "
        f"total={wrapped.rounds}"
    )
    print(
        f"  combined matching size={len(matching)}, "
        f"maximal={is_maximal_matching(disconnected, matching)}"
    )


if __name__ == "__main__":
    main()
