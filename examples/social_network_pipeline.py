"""A skewed-degree "social network" pipeline.

The intro motivates the heterogeneous regime with practical clusters: many
weak workers, one strong coordinator.  This example runs a realistic
pipeline on a preferential-attachment graph (heavy-tailed degrees, the
regime where degree-split algorithms earn their keep):

1. (Δ+1)-coloring  — e.g. channel assignment / scheduling slots;
2. maximal independent set — e.g. picking non-interfering seeds;
3. maximal matching — e.g. pairing users for moderation review.

All three run in the same Heterogeneous MPC deployment and report rounds.

Run:  python examples/social_network_pipeline.py
"""

import random

from repro.core import (
    heterogeneous_coloring,
    heterogeneous_matching,
    heterogeneous_mis,
)
from repro.graph import generators
from repro.graph.validation import (
    is_maximal_independent_set,
    is_maximal_matching,
    is_proper_coloring,
)


def main() -> None:
    rng = random.Random(11)
    graph = generators.preferential_attachment_graph(250, 4, rng)
    degrees = sorted(graph.degrees())
    print(
        f"social graph: n={graph.n}, m={graph.m}, "
        f"max degree={degrees[-1]}, median degree={degrees[len(degrees) // 2]}\n"
    )

    coloring = heterogeneous_coloring(graph, rng=random.Random(1))
    ok = is_proper_coloring(graph, coloring.colors, coloring.num_colors_allowed)
    print(
        f"coloring : {len(set(coloring.colors))} colors used "
        f"(allowed {coloring.num_colors_allowed}), proper={ok}, "
        f"rounds={coloring.rounds}, conflict edges={coloring.conflict_edges}"
    )

    mis = heterogeneous_mis(graph, rng=random.Random(2))
    ok = is_maximal_independent_set(graph, mis.vertices)
    print(
        f"MIS      : {mis.size} seeds, maximal={ok}, "
        f"iterations={mis.iterations} (log log Δ), rounds={mis.rounds}"
    )

    matching = heterogeneous_matching(graph, rng=random.Random(3))
    ok = is_maximal_matching(graph, matching.matching)
    print(
        f"matching : {matching.size} pairs, maximal={ok}, "
        f"rounds={matching.rounds} "
        f"(phase-1 peeling iterations: {matching.phase1_iterations})"
    )


if __name__ == "__main__":
    main()
