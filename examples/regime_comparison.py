"""Sublinear vs. Heterogeneous MPC — the paper's headline comparison.

Runs connectivity, MST, and maximal matching on the same inputs in both
regimes and prints the measured round counts side by side: one near-linear
machine collapses the Ω(log)-type round counts of the sublinear regime.

Run:  python examples/regime_comparison.py
"""

import random

from repro.analysis import render_table
from repro.baselines import (
    sublinear_boruvka_mst,
    sublinear_connectivity,
    sublinear_matching,
)
from repro.core import (
    heterogeneous_connectivity,
    heterogeneous_matching,
    heterogeneous_mst,
    solve_one_vs_two_cycles,
)
from repro.graph import generators


def main() -> None:
    rng = random.Random(99)
    n, m = 120, 2400
    weighted = generators.random_connected_graph(n, m, rng).with_unique_weights(rng)
    unweighted = weighted.unweighted()
    cycles, _ = generators.one_or_two_cycles(n, rng)

    rows = []

    sub = sublinear_connectivity(unweighted, rng=random.Random(1))
    het = heterogeneous_connectivity(unweighted, rng=random.Random(2))
    rows.append(
        {"problem": "connectivity", "sublinear_rounds": sub.rounds,
         "heterogeneous_rounds": het.rounds, "paper": "O(log) -> O(1)"}
    )

    sub = sublinear_boruvka_mst(weighted, rng=random.Random(3))
    het = heterogeneous_mst(weighted, rng=random.Random(4))
    rows.append(
        {"problem": "MST", "sublinear_rounds": sub.rounds,
         "heterogeneous_rounds": het.rounds, "paper": "O(log n) -> O(loglog m/n)"}
    )
    mst_note = (
        f"    (MST phase counts — the quantity that scales: "
        f"sublinear Borůvka iterations={sub.iterations} (~log n), "
        f"heterogeneous doubly-exponential steps={het.boruvka_steps} "
        f"(~log log m/n); per-phase constants differ)"
    )

    sub = sublinear_matching(unweighted, rng=random.Random(5))
    het = heterogeneous_matching(unweighted, rng=random.Random(6))
    rows.append(
        {"problem": "maximal matching", "sublinear_rounds": sub.rounds,
         "heterogeneous_rounds": het.rounds, "paper": "sqrt(log d loglog d)"}
    )

    sub = sublinear_connectivity(cycles, rng=random.Random(7))
    het = solve_one_vs_two_cycles(cycles, rng=random.Random(8))
    rows.append(
        {"problem": "1-vs-2 cycles", "sublinear_rounds": sub.rounds,
         "heterogeneous_rounds": het.rounds, "paper": "conjectured Ω(log n) -> 1"}
    )

    print(f"n={n}, m={m}: measured simulator rounds per regime\n")
    print(
        render_table(
            rows, ["problem", "sublinear_rounds", "heterogeneous_rounds", "paper"]
        )
    )
    print(mst_note)


if __name__ == "__main__":
    main()
