"""Quickstart: MST in the Heterogeneous MPC model.

Builds a random weighted graph, deploys the paper's model (one near-linear
machine + m/sqrt(n) sublinear machines), runs the O(log log(m/n))-round MST
algorithm of Section 3, verifies the output against sequential Kruskal, and
prints what the simulator measured.

Run:  python examples/quickstart.py
"""

import random

from repro.core import heterogeneous_mst
from repro.graph import generators
from repro.graph.validation import verify_mst
from repro.local.mst import kruskal


def main() -> None:
    rng = random.Random(2022)
    n, m = 200, 3200
    graph = generators.random_connected_graph(n, m, rng).with_unique_weights(rng)
    print(f"input: n={graph.n} vertices, m={graph.m} edges, density m/n={m // n}")

    result = heterogeneous_mst(graph, rng=random.Random(1))

    print(f"\nMST weight        : {result.total_weight}")
    print(f"matches Kruskal   : {verify_mst(graph, result.edges)}")
    print(f"Kruskal weight    : {sum(e[2] for e in kruskal(graph))}")

    ledger = result.cluster.ledger
    print(f"\nBorůvka steps     : {result.boruvka_steps}  (log log(m/n) of them)")
    print(f"sampling attempts : {result.sampling_attempts}")
    print(f"rounds            : {result.rounds}")
    print(f"total words moved : {ledger.total_words}")
    print(f"machines          : {len(result.cluster.smalls)} small + 1 large")
    print(
        f"capacities        : small={result.cluster.config.small_capacity} words, "
        f"large={result.cluster.config.large_capacity} words"
    )


if __name__ == "__main__":
    main()
