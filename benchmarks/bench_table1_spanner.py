"""T1-spanner — O(k)-spanner row of Table 1.

Paper: sublinear O(log k) [14]  |  heterogeneous O(1), size O(n^{1+1/k}),
stretch 6k-1 [new].

Sweep k; check constant rounds, measured stretch <= 6k-1, and size tracking
n^{1+1/k} (sizes shrink as k grows).
"""

import random

from repro.core.spanner import heterogeneous_spanner
from repro.graph import generators
from repro.graph.validation import spanner_stretch

from _util import publish

KS = (1, 2, 3, 4)


def run_sweep() -> list[dict]:
    rng = random.Random(23)
    n = 64
    graph = generators.gnm_random_graph(n, 1400, rng)
    rows = []
    for k in KS:
        result = heterogeneous_spanner(graph, k=k, rng=random.Random(k))
        stretch = spanner_stretch(graph, result.edges)
        rows.append(
            {
                "k": k,
                "stretch_bound=6k-1": result.stretch_bound,
                "stretch_measured": stretch,
                "size": result.size,
                "size_budget~n^(1+1/k)": round(6 * n ** (1 + 1 / k)),
                "m": graph.m,
                "rounds": result.rounds,
            }
        )
    return rows


def test_table1_spanner(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "table1_spanner",
        "Table 1 / O(k)-spanner: O(1) rounds, size O(n^{1+1/k}), stretch <= 6k-1",
        rows,
        ["k", "stretch_bound=6k-1", "stretch_measured", "size",
         "size_budget~n^(1+1/k)", "m", "rounds"],
    )
    for row in rows:
        assert row["stretch_measured"] <= row["stretch_bound=6k-1"]
        assert row["rounds"] <= 220  # constant-round construction
    # Size decreases (weakly) as k grows.
    sizes = [row["size"] for row in rows]
    assert sizes[-1] <= sizes[0]
