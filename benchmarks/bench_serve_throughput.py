"""Serve-path load generator: streamed signed updates + query throughput.

Drives one in-process :class:`~repro.serve.service.GraphService` per leg
with a deterministic insert/delete stream (80% inserts, 20% deletes of
live edges, batched), then measures the query side on the refreshed
forest.  Three figures per leg:

* ``updates_per_sec`` — pure ingest: signed ``SketchBank.update_edges``
  over the shard banks, no refresh in the timed window;
* ``refresh_sec`` — the one lazy forest rebuild (merge shards + Borůvka)
  the first query after a batch pays, reported for context;
* ``queries_per_sec`` — ``connected(u, v)`` on the warm forest.

Legs sweep the streamed-update count from 10k to 1M (full mode; smoke
runs shrink to 1k/2k and skip persistence).  The artifact goes to
``results/perf/serve_throughput.json`` (``repro.perf/1``), which the
perf gate compares against the committed baseline — the honest numbers
of whatever machine last refreshed it.

Acceptance bar (skipped under smoke): warm queries answer at >= 50k/s —
they are label lookups, so anything slower means the lazy-refresh
contract broke and queries are paying sketch work.

``REPRO_BENCH_SERVE_UPDATES`` overrides the leg list (comma-separated).
"""

from __future__ import annotations

import os
import random
import time

from repro.env import env_flag
from repro.mpc.executor import shutdown_pools
from repro.serve import GraphService, ServeConfig

from _util import publish, publish_perf

SMOKE = env_flag("REPRO_BENCH_SMOKE")
N = 1024
BATCH = 1000
QUERIES = 1000 if SMOKE else 20000
_override = os.environ.get("REPRO_BENCH_SERVE_UPDATES")
if _override:
    LEGS = tuple(int(x) for x in _override.split(","))
elif SMOKE:
    LEGS = (1000, 2000)
else:
    LEGS = (10_000, 100_000, 1_000_000)


def _stream(updates: int, rng: random.Random):
    """Deterministic batched update stream: ~80% inserts, ~20% deletes."""
    live: list[tuple[int, int]] = []
    produced = 0
    while produced < updates:
        size = min(BATCH, updates - produced)
        deletes = []
        if live:
            for _ in range(min(size // 5, len(live))):
                deletes.append(live.pop(rng.randrange(len(live))))
        inserts = []
        for _ in range(size - len(deletes)):
            u, v = rng.randrange(N), rng.randrange(N)
            inserts.append((u, v))
            if u != v:
                live.append((min(u, v), max(u, v)))
        produced += size
        yield inserts, deletes


def _serve_once(updates: int) -> dict:
    service = GraphService(ServeConfig(n=N, seed=7, shards=4))
    rng = random.Random(updates)

    ingest = 0.0
    for inserts, deletes in _stream(updates, rng):
        start = time.perf_counter()
        service.update(insert=inserts, delete=deletes)
        ingest += time.perf_counter() - start

    start = time.perf_counter()
    view = service.components()
    refresh = time.perf_counter() - start

    pairs = [(rng.randrange(N), rng.randrange(N)) for _ in range(QUERIES)]
    start = time.perf_counter()
    hits = sum(service.connected(u, v) for u, v in pairs)
    query = time.perf_counter() - start

    return {
        "updates": updates,
        "batch": BATCH,
        "queries": QUERIES,
        "backend": service.backend.name,
        "updates_per_sec": round(updates / ingest),
        "queries_per_sec": round(QUERIES / query),
        "refresh_sec": round(refresh, 4),
        "edges": sum(service._edges.values()),
        "components": view.num_components,
        "connected_hits": hits,
    }


def run_serve_throughput():
    rows = [_serve_once(updates) for updates in LEGS]
    shutdown_pools()  # bench epilogue: don't leave pools to atexit
    return rows


def test_serve_throughput(benchmark):
    rows = benchmark.pedantic(run_serve_throughput, rounds=1, iterations=1)
    publish(
        "serve_throughput",
        f"Dynamic-graph service: streamed signed updates (n={N}) "
        "and warm-forest queries",
        rows,
        ["updates", "batch", "backend", "updates_per_sec",
         "queries_per_sec", "refresh_sec", "edges", "components"],
        persist=not SMOKE,
    )
    publish_perf(
        "serve_throughput",
        rows,
        params={
            "n": N,
            "batch": BATCH,
            "queries": QUERIES,
            "cpus": os.cpu_count() or 1,
        },
        persist=not SMOKE,
    )
    if not SMOKE:
        for row in rows:
            assert row["queries_per_sec"] >= 50_000, (
                f"warm queries at {row['queries_per_sec']}/s — lazy refresh "
                "contract broken (queries are paying sketch work)"
            )


if __name__ == "__main__":
    for row in run_serve_throughput():
        print(row)
