"""T1-coloring — (Δ+1) vertex coloring row of Table 1.

Paper: sublinear O(log log log n) [19]  |  heterogeneous O(1) [6].

Sweep n; check proper (Δ+1)-colorings in a constant number of rounds, and
report the conflict-graph size the large machine had to collect (the ACK
palette-sparsification quantity, O~(n) w.h.p.).
"""

import random

from repro.core.coloring import heterogeneous_coloring
from repro.graph import generators
from repro.graph.validation import is_proper_coloring

from _util import publish

SIZES = (40, 80, 120)


def run_sweep() -> list[dict]:
    rows = []
    for n in SIZES:
        rng = random.Random(n)
        graph = generators.random_connected_graph(n, 6 * n, rng)
        result = heterogeneous_coloring(graph, rng=random.Random(n + 1))
        assert is_proper_coloring(graph, result.colors, result.num_colors_allowed)
        rows.append(
            {
                "n": n,
                "m": graph.m,
                "delta+1": result.num_colors_allowed,
                "colors_used": len(set(result.colors)),
                "conflict_edges": result.conflict_edges,
                "attempts": result.attempts,
                "rounds": result.rounds,
                "theory": "O(1)",
            }
        )
    return rows


def test_table1_coloring(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "table1_coloring",
        "Table 1 / (Δ+1)-coloring: O(1) rounds via palette sparsification",
        rows,
        ["n", "m", "delta+1", "colors_used", "conflict_edges", "attempts",
         "rounds", "theory"],
    )
    assert all(row["rounds"] <= 30 for row in rows)
    assert all(row["colors_used"] <= row["delta+1"] for row in rows)
