"""Primitive-layer throughput: columnar record batches vs the object path.

Times the distributed primitives on a 32-small-machine cluster at a
100k-item scale (``REPRO_BENCH_PRIMITIVE_ITEMS`` overrides), comparing:

* *object* — per-item tuples, per-item bucketing/dict loops (the
  pre-columnar behavior, pinned via ``repro.primitives.columnar``'s
  ``forced_path``);
* *columnar* — :class:`~repro.primitives.columnar.EdgeBlock` record
  batches: packed-key ``searchsorted`` routing in ``sample_sort``,
  ``argsort``/``reduceat`` group-bys in ``aggregate``, vectorized
  keep-first masks in ``dedup``, flat directed copies in ``join`` and
  ``arrange``.

Sort and aggregate run under both engine backends (``pure`` pre-groups
blocks itself; ``numpy`` lets the engine group the scatter), and their
columnar inputs are block-native — the steady-state representation a
columnar pipeline hands from one primitive to the next (a list-ingest
first step pays a one-time conversion and still clears the bar).  The
remaining dual-path primitives take plain tuple lists on both paths and
build their internal representations themselves.  ``broadcast`` and
``disseminate`` have a single (batched) implementation each and are
reported for trend tracking.

Every dual-path measurement asserts bit-identical results and ledgers
between the two paths before reporting.  Acceptance bars (skipped under
``REPRO_BENCH_SMOKE=1``, where tiny sizes don't amortize anything):
columnar >= 5x object on the sort and aggregate routes under the pure
engine, and the numpy engine at least on par with pure.
"""

from __future__ import annotations

import os
import random
import time

import repro.primitives.columnar as columnar
from repro.mpc.cluster import Cluster
from repro.mpc.config import ModelConfig
from repro.primitives.aggregate import aggregate
from repro.primitives.arrange import arrange_directed
from repro.primitives.broadcast import broadcast
from repro.primitives.columnar import EdgeBlock, ingest_rows
from repro.primitives.dedup import dedup_lightest
from repro.primitives.disseminate import disseminate
from repro.primitives.edgestore import EdgeStore
from repro.primitives.join import annotate_edges_with_vertex_values
from repro.primitives.sort import sample_sort
from repro.env import env_flag

from _util import publish, publish_perf

SMOKE = env_flag("REPRO_BENCH_SMOKE")
ITEMS = int(
    os.environ.get("REPRO_BENCH_PRIMITIVE_ITEMS", "2000" if SMOKE else "100000")
)
NUM_SMALL = 32
REPEATS = 1 if SMOKE else 3

_rng = random.Random(42)
#: ids drawn from an n-sized range, like real workloads; (u, v, w) spans
#: must stay packable so the sort exercises the packed routing mode.
EDGES = [
    (_rng.randrange(100000), _rng.randrange(100000), _rng.randrange(1000000))
    for _ in range(ITEMS)
]
PAIRS = [(_rng.randrange(1 << 15), _rng.randrange(1000)) for _ in range(ITEMS)]
VALUES = {v: _rng.randrange(1 << 20) for v in range(100000)}


def _cluster() -> Cluster:
    return Cluster(ModelConfig(n=4096, m=16384, num_small=NUM_SMALL), rng=random.Random(7))


def _fingerprint(cluster: Cluster, names: list[str]):
    datasets = {}
    for name in names:
        for machine in cluster.smalls:
            data = machine.get(name, [])
            rows = data.rows() if isinstance(data, EdgeBlock) else list(data)
            datasets[(name, machine.machine_id)] = rows
    ledger = [
        (r.index, r.note, r.total_words, r.max_sent, r.max_received, r.items)
        for r in cluster.ledger.records
    ]
    return datasets, ledger, cluster.ledger.memory_high_water


def _measure(path: str, engine: str, run_once):
    """Best-of-``REPEATS`` runtime of *run_once* plus the fingerprint of
    its last execution (identity checks compare fingerprints)."""
    os.environ["REPRO_ENGINE_BACKEND"] = engine
    best, fingerprint = float("inf"), None
    with columnar.forced_path(path):
        for _ in range(REPEATS):
            elapsed, fingerprint = run_once()
            best = min(best, elapsed)
    return best, fingerprint


def _edges_for(cluster: Cluster, name: str, block_native: bool) -> None:
    chunks = [EDGES[i :: NUM_SMALL] for i in range(NUM_SMALL)]
    for machine, chunk in zip(cluster.smalls, chunks):
        payload = ingest_rows(chunk) if block_native else list(chunk)
        machine.put(name, payload if payload is not None else list(chunk))


# -- per-primitive workloads -------------------------------------------
def _run_sort(block_native: bool):
    def once():
        cluster = _cluster()
        _edges_for(cluster, "e", block_native)
        start = time.perf_counter()
        sample_sort(cluster, "e", key=(0, 1, 2))
        return time.perf_counter() - start, _fingerprint(cluster, ["e"])

    return once


def _run_aggregate(block_native: bool):
    def once():
        cluster = _cluster()
        per = {
            machine.machine_id: PAIRS[i :: NUM_SMALL]
            for i, machine in enumerate(cluster.smalls)
        }
        if block_native:
            per = {mid: ingest_rows(chunk) or chunk for mid, chunk in per.items()}
        start = time.perf_counter()
        result = aggregate(cluster, per, "sum")
        elapsed = time.perf_counter() - start
        datasets, ledger, memory = _fingerprint(cluster, [])
        datasets["result"] = sorted(result.items())
        return elapsed, (datasets, ledger, memory)

    return once


def _run_join():
    def once():
        cluster = _cluster()
        _edges_for(cluster, "e", False)
        start = time.perf_counter()
        annotate_edges_with_vertex_values(cluster, "e", VALUES, "annotated", default=0)
        return time.perf_counter() - start, _fingerprint(cluster, ["annotated"])

    return once


_rng2 = random.Random(9)
DEDUP_RECORDS = [(_rng2.randrange(30000), index) for index in range(ITEMS)]


def _run_dedup():
    chunks = [DEDUP_RECORDS[i :: NUM_SMALL] for i in range(NUM_SMALL)]

    def once():
        cluster = _cluster()
        for machine, chunk in zip(cluster.smalls, chunks):
            machine.put("r", list(chunk))
        start = time.perf_counter()
        dedup_lightest(cluster, "r", key=(0,), weight=(1,))
        return time.perf_counter() - start, _fingerprint(cluster, ["r"])

    return once


def _run_arrange():
    def once():
        cluster = _cluster()
        _edges_for(cluster, "e", False)
        start = time.perf_counter()
        arrangement = arrange_directed(cluster, "e", "e.dir", secondary_key=2)
        elapsed = time.perf_counter() - start
        datasets, ledger, memory = _fingerprint(cluster, ["e.dir"])
        datasets["degrees"] = sorted(arrangement.out_degrees.items())
        return elapsed, (datasets, ledger, memory)

    return once


def _run_edgestore():
    def once():
        cluster = _cluster()
        _edges_for(cluster, "e", False)
        store = EdgeStore(cluster, "e")
        start = time.perf_counter()
        degrees = store.aggregate(lambda e: (e[0], 1), "sum", note="deg")
        elapsed = time.perf_counter() - start
        datasets, ledger, memory = _fingerprint(cluster, [])
        datasets["degrees"] = sorted(degrees.items())
        return elapsed, (datasets, ledger, memory)

    return once


def _run_disseminate():
    def once():
        cluster = _cluster()
        _edges_for(cluster, "e", False)
        sample_sort(cluster, "e", key=(0, 1, 2), note="prep")
        holders: dict[int, list[int]] = {}
        for machine in cluster.smalls:
            data = machine.get("e", [])
            col = (
                set(data.columns[0].tolist())
                if isinstance(data, EdgeBlock)
                else {record[0] for record in data}
            )
            for vertex in sorted(col):
                holders.setdefault(vertex, []).append(machine.machine_id)
        present = {v: VALUES.get(v, 0) for v in holders}
        start = time.perf_counter()
        received = disseminate(cluster, present, holders)
        elapsed = time.perf_counter() - start
        total = sum(len(per) for per in received.values())
        return elapsed, ({"delivered": total}, [], 0)

    return once


def _run_broadcast():
    value = tuple(range(256))

    def once():
        cluster = _cluster()
        dsts = [machine.machine_id for machine in cluster.smalls]
        src = cluster.large.machine_id
        start = time.perf_counter()
        for _ in range(50):
            broadcast(cluster, src, value, dsts)
        return (time.perf_counter() - start) / 50, ({}, [], 0)

    return once


def run_comparison():
    rows = []

    def add(primitive, path, engine, elapsed, baseline, items=ITEMS):
        rows.append(
            {
                "primitive": primitive,
                "path": path,
                "engine": engine,
                "items": items,
                "items_per_sec": round(items / elapsed),
                "speedup": round(baseline / elapsed, 2),
            }
        )

    # Sort and aggregate: both paths under both engines (the bars).
    for primitive, factory in (("sample_sort", _run_sort), ("aggregate", _run_aggregate)):
        base, base_fp = _measure("object", "pure", factory(False))
        add(primitive, "object", "pure", base, base)
        obj_np, fp = _measure("object", "numpy", factory(False))
        assert fp == base_fp, f"{primitive}: object path differs across engines"
        add(primitive, "object", "numpy", obj_np, base)
        col_pure, fp = _measure("columnar", "pure", factory(True))
        assert fp == base_fp, f"{primitive}: columnar/pure differs from object"
        add(primitive, "columnar", "pure", col_pure, base)
        col_np, fp = _measure("columnar", "numpy", factory(True))
        assert fp == base_fp, f"{primitive}: columnar/numpy differs from object"
        add(primitive, "columnar", "numpy", col_np, base)

    # The remaining dual-path primitives: numpy engine, tuple-list inputs.
    for primitive, factory, items in (
        ("join", _run_join, ITEMS),
        ("dedup", _run_dedup, ITEMS),
        ("arrange", _run_arrange, 2 * ITEMS),
        ("edgestore.aggregate", _run_edgestore, ITEMS),
    ):
        base, base_fp = _measure("object", "numpy", factory())
        add(primitive, "object", "numpy", base, base, items)
        col, fp = _measure("columnar", "numpy", factory())
        assert fp == base_fp, f"{primitive}: columnar path differs from object"
        add(primitive, "columnar", "numpy", col, base, items)

    # Single-implementation primitives, for the trajectory.
    elapsed, (info, _, _) = _measure("columnar", "numpy", _run_disseminate())
    add("disseminate", "batched", "numpy", elapsed, elapsed, info["delivered"])
    elapsed, _ = _measure("columnar", "numpy", _run_broadcast())
    add("broadcast", "tree", "numpy", elapsed, elapsed, NUM_SMALL * 256)
    return rows


def _row(rows, primitive, path, engine):
    return next(
        r for r in rows if (r["primitive"], r["path"], r["engine"]) == (primitive, path, engine)
    )


def test_primitive_throughput(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    publish(
        "primitive_throughput",
        f"Distributed primitives: items per second, {ITEMS}-item workloads",
        rows,
        ["primitive", "path", "engine", "items", "items_per_sec", "speedup"],
        persist=not SMOKE,
    )
    publish_perf(
        "primitive_throughput",
        rows,
        params={"items": ITEMS, "num_small": NUM_SMALL, "repeats": REPEATS},
        persist=not SMOKE,
    )
    if not SMOKE:
        for primitive in ("sample_sort", "aggregate"):
            col_pure = _row(rows, primitive, "columnar", "pure")
            col_np = _row(rows, primitive, "columnar", "numpy")
            assert col_pure["speedup"] >= 5.0, f"{primitive} columnar/pure below 5x"
            # The numpy engine only moves the grouping argsort into the
            # engine; it must at least hold the pure engine's rate (small
            # tolerance for timer jitter).
            assert (
                col_np["items_per_sec"] >= 0.95 * col_pure["items_per_sec"]
            ), f"{primitive} numpy engine slower than pure"


if __name__ == "__main__":
    for row in run_comparison():
        print(row)
