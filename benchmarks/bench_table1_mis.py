"""T1-mis — maximal independent set row of Table 1.

Paper: sublinear O(sqrt(log Δ) log log Δ + sqrt(log log n)) [33]  |
heterogeneous O(log log Δ) [26].

Sweep the maximum degree Δ; the iteration count of the rank-prefix
algorithm must grow like log log Δ (very slowly).
"""

import random

from repro.core.mis import heterogeneous_mis, prefix_thresholds
from repro.graph import generators
from repro.graph.validation import is_maximal_independent_set

from _util import publish

DENSITIES = (3, 10, 30)


def run_sweep() -> list[dict]:
    rows = []
    n = 90
    for density in DENSITIES:
        rng = random.Random(density)
        m = min(n * (n - 1) // 2, n * density)
        graph = generators.random_connected_graph(n, m, rng)
        result = heterogeneous_mis(graph, rng=random.Random(density + 1))
        assert is_maximal_independent_set(graph, result.vertices)
        rows.append(
            {
                "n": n,
                "max_degree": graph.max_degree,
                "mis_size": result.size,
                "iterations": result.iterations,
                "theory_iters~loglogΔ": len(prefix_thresholds(n, graph.max_degree)),
                "rounds": result.rounds,
            }
        )
    return rows


def test_table1_mis(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "table1_mis",
        "Table 1 / MIS: O(log log Δ) iterations of O(1) rounds each",
        rows,
        ["n", "max_degree", "mis_size", "iterations", "theory_iters~loglogΔ",
         "rounds"],
    )
    iterations = [row["iterations"] for row in rows]
    # log log growth: quadrupling the degree adds at most a few iterations.
    assert iterations[-1] <= iterations[0] + 4
