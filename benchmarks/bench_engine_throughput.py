"""Batched round engine throughput: RoundPlan vs. per-message accounting.

Routes a 100k-item edge workload (the sample-sort routing pattern, the
hottest exchange in the repo) through two implementations of one
synchronous round:

* *per-message*: the seed implementation of ``Cluster.exchange`` — one
  ``(src, dst, payload)`` tuple per item, one recursive ``word_size`` call
  per payload, one inbox append per item;
* *batched*: a ``RoundPlan`` with one batch per ``(src, dst)`` pair,
  executed by ``Cluster.execute`` with one ``word_size_many`` pass per
  batch.

Both paths must charge identical words (asserted); the table reports
items-routed-per-second and the speedup.
"""

import os
import random
import time

from repro.mpc import Cluster, ModelConfig, RoundPlan
from repro.mpc.words import word_size

from _util import publish

# The CI smoke job shrinks the workload and skips persisting the table.
ITEMS = int(os.environ.get("REPRO_BENCH_ITEMS", "100000"))
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPEATS = 3


def _make_cluster() -> Cluster:
    # 32 small machines: the routing fan-out of the repo's test and
    # benchmark configurations, so each (src, dst) batch carries ~100 items.
    config = ModelConfig.heterogeneous(n=4096, m=ITEMS, num_small=32)
    return Cluster(config, rng=random.Random(0))


def _make_workload(cluster: Cluster) -> dict[int, list[tuple[int, tuple]]]:
    """Per-source ``(dst, edge)`` assignments, the sample-sort route shape:
    each machine holds its share of the items and routes every item to the
    bucket machine owning its key interval."""
    rng = random.Random(42)
    ids = cluster.small_ids
    per_machine = ITEMS // len(ids)
    return {
        src: [
            (
                ids[rng.randrange(len(ids))],
                (rng.randrange(4096), rng.randrange(4096), rng.randrange(10**6)),
            )
            for _ in range(per_machine)
        ]
        for src in ids
    }


def route_per_message(cluster: Cluster, workload, note: str) -> int:
    """The seed path: per-item message tuples fed to a transplant of the
    seed ``Cluster.exchange`` hot loop (per-message membership check,
    per-payload ``word_size``, per-item inbox append, post-round memory
    sweep)."""
    messages = [
        (src, dst, payload)
        for src, assignments in workload.items()
        for dst, payload in assignments
    ]
    sent: dict[int, int] = {}
    received: dict[int, int] = {}
    inboxes: dict[int, list] = {}
    total = 0
    for src, dst, payload in messages:
        if src not in cluster.machines or dst not in cluster.machines:
            raise ValueError(f"unknown machines {src}->{dst}")
        words = word_size(payload)
        total += words
        sent[src] = sent.get(src, 0) + words
        received[dst] = received.get(dst, 0) + words
        inboxes.setdefault(dst, []).append(payload)
    violations = []
    for mid, words in sent.items():
        if words > cluster.machines[mid].capacity:
            violations.append(f"[{note}] machine {mid} sent over capacity")
    for mid, words in received.items():
        if words > cluster.machines[mid].capacity:
            violations.append(f"[{note}] machine {mid} received over capacity")
    cluster.ledger.record_round(
        note=note,
        total_words=total,
        max_sent=max(sent.values(), default=0),
        max_received=max(received.values(), default=0),
        violations=tuple(violations),
    )
    cluster._record_memory()
    return total


def route_batched(cluster: Cluster, workload, note: str) -> int:
    """The migrated path: bucket per destination locally, one batch per
    ``(src, dst)`` pair, one bulk sizing pass per batch."""
    plan = RoundPlan(note=note)
    for src, assignments in workload.items():
        outgoing: dict[int, list] = {}
        for dst, payload in assignments:
            bucket = outgoing.get(dst)
            if bucket is None:
                outgoing[dst] = [payload]
            else:
                bucket.append(payload)
        for dst, batch in outgoing.items():
            plan.send_batch(src, dst, batch)
    cluster.execute(plan)
    return cluster.ledger.records[-1].total_words


def _best_rate(fn, cluster, assignments, note) -> tuple[float, int]:
    best = float("inf")
    words = 0
    for _ in range(REPEATS):
        start = time.perf_counter()
        words = fn(cluster, assignments, note)
        best = min(best, time.perf_counter() - start)
    return ITEMS / best, words


def run_comparison() -> list[dict]:
    cluster = _make_cluster()
    assignments = _make_workload(cluster)
    per_message_rate, per_message_words = _best_rate(
        route_per_message, cluster, assignments, "baseline"
    )
    batched_rate, batched_words = _best_rate(
        route_batched, cluster, assignments, "batched"
    )
    assert batched_words == per_message_words, "engines disagree on words charged"
    return [
        {
            "engine": "per-message (seed)",
            "items": ITEMS,
            "items_per_sec": round(per_message_rate),
            "speedup": 1.0,
        },
        {
            "engine": "RoundPlan batched",
            "items": ITEMS,
            "items_per_sec": round(batched_rate),
            "speedup": round(batched_rate / per_message_rate, 2),
        },
    ]


def test_engine_throughput(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    publish(
        "engine_throughput",
        f"Batched round engine: items routed per second, {ITEMS}-item route",
        rows,
        ["engine", "items", "items_per_sec", "speedup"],
        persist=not SMOKE,
    )
    # The tentpole's acceptance bar: >= 3x over the per-message baseline
    # (small smoke sizes don't amortize the batching).
    if not SMOKE:
        assert rows[1]["speedup"] >= 3.0


if __name__ == "__main__":
    for row in run_comparison():
        print(row)
