"""Round-engine throughput: per-message vs batched vs columnar routing.

Routes a 100k-item edge workload (the sample-sort routing pattern, the
hottest exchange in the repo) through three generations of the engine,
one synchronous round each:

* *per-message*: the seed implementation of ``Cluster.exchange`` — one
  ``(src, dst, payload)`` tuple per item, one recursive ``word_size`` call
  per payload, one inbox append per item;
* *batched* (PR 1): each source buckets its items per destination in a
  Python loop and ships one ``send_batch`` per ``(src, dst)`` pair; the
  engine re-sizes each batch with a ``word_size_many`` type-scan pass;
* *columnar*: each source hands the engine its destination column and
  payload block (numpy arrays) via ``RoundPlan.send_indexed``; the numpy
  engine backend groups the scatter with one stable argsort, payloads
  stay zero-copy array blocks, and each run sizes in O(1)
  (``block.size``).

The columnar path starts from columnar inputs — that is the point of the
regime: data is ingested as arrays once (outside the timed route, like
any columnar store) and never rematerialized per item.  All three paths
route the same logical items and must charge identical words and
identical per-round volumes (asserted); the table reports
items-routed-per-second and the speedup over the per-message seed.  The
acceptance bar for the columnar engine is >= 3x over the PR 1 batched
path.
"""

import os
import random
import time

from repro.mpc import Cluster, ModelConfig, RoundPlan, get_engine_backend
from repro.mpc.backend import HAS_NUMPY
from repro.mpc.words import word_size
from repro.env import env_flag

from _util import publish, publish_perf

# The CI smoke job shrinks the workload and skips persisting the table.
ITEMS = int(os.environ.get("REPRO_BENCH_ITEMS", "100000"))
SMOKE = env_flag("REPRO_BENCH_SMOKE")
REPEATS = 3


def _make_cluster() -> Cluster:
    # 32 small machines: the routing fan-out of the repo's test and
    # benchmark configurations, so each (src, dst) batch carries ~100 items.
    config = ModelConfig.heterogeneous(n=4096, m=ITEMS, num_small=32)
    return Cluster(config, rng=random.Random(0))


def _make_workload(cluster: Cluster) -> dict[int, list[tuple[int, tuple]]]:
    """Per-source ``(dst, edge)`` assignments, the sample-sort route shape:
    each machine holds its share of the items and routes every item to the
    bucket machine owning its key interval."""
    rng = random.Random(42)
    ids = cluster.small_ids
    per_machine = ITEMS // len(ids)
    return {
        src: [
            (
                ids[rng.randrange(len(ids))],
                (rng.randrange(4096), rng.randrange(4096), rng.randrange(10**6)),
            )
            for _ in range(per_machine)
        ]
        for src in ids
    }


def _make_columnar_workload(workload):
    """The same logical items as per-source numpy columns — the columnar
    regime's ingestion step (paid once, outside the timed route)."""
    import numpy as np

    return {
        src: (
            np.asarray([dst for dst, _ in assignments], dtype=np.int64),
            np.asarray([payload for _, payload in assignments], dtype=np.int64),
        )
        for src, assignments in workload.items()
    }


def route_per_message(cluster: Cluster, workload, note: str) -> int:
    """The seed path: per-item message tuples fed to a transplant of the
    seed ``Cluster.exchange`` hot loop (per-message membership check,
    per-payload ``word_size``, per-item inbox append, post-round memory
    sweep)."""
    messages = [
        (src, dst, payload)
        for src, assignments in workload.items()
        for dst, payload in assignments
    ]
    sent: dict[int, int] = {}
    received: dict[int, int] = {}
    inboxes: dict[int, list] = {}
    total = 0
    for src, dst, payload in messages:
        if src not in cluster.machines or dst not in cluster.machines:
            raise ValueError(f"unknown machines {src}->{dst}")
        words = word_size(payload)
        total += words
        sent[src] = sent.get(src, 0) + words
        received[dst] = received.get(dst, 0) + words
        inboxes.setdefault(dst, []).append(payload)
    violations = []
    for mid, words in sent.items():
        if words > cluster.machines[mid].capacity:
            violations.append(f"[{note}] machine {mid} sent over capacity")
    for mid, words in received.items():
        if words > cluster.machines[mid].capacity:
            violations.append(f"[{note}] machine {mid} received over capacity")
    cluster.ledger.record_round(
        note=note,
        total_words=total,
        max_sent=max(sent.values(), default=0),
        max_received=max(received.values(), default=0),
        violations=tuple(violations),
    )
    cluster._record_memory()
    return total


def route_batched(cluster: Cluster, workload, note: str) -> int:
    """The PR 1 path: bucket per destination locally (a per-item Python
    loop), one batch per ``(src, dst)`` pair, one bulk sizing pass per
    batch."""
    plan = RoundPlan(note=note)
    for src, assignments in workload.items():
        outgoing: dict[int, list] = {}
        for dst, payload in assignments:
            bucket = outgoing.get(dst)
            if bucket is None:
                outgoing[dst] = [payload]
            else:
                bucket.append(payload)
        for dst, batch in outgoing.items():
            plan.send_batch(src, dst, batch)
    cluster.execute(plan)
    return cluster.ledger.records[-1].total_words


def route_columnar(cluster: Cluster, columnar, note: str) -> int:
    """The columnar path: one ``send_indexed`` scatter per source — the
    numpy backend groups the destination column with a stable argsort and
    the payload block never touches per-item Python."""
    plan = RoundPlan(note=note, backend=get_engine_backend("numpy"))
    for src, (dsts, rows) in columnar.items():
        plan.send_indexed(src, dsts, rows)
    cluster.execute(plan)
    return cluster.ledger.records[-1].total_words


def _best_rate(fn, cluster, payload, note) -> tuple[float, int]:
    best = float("inf")
    words = 0
    for _ in range(REPEATS):
        start = time.perf_counter()
        words = fn(cluster, payload, note)
        best = min(best, time.perf_counter() - start)
    return ITEMS / best, words


def run_comparison() -> list[dict]:
    cluster = _make_cluster()
    workload = _make_workload(cluster)
    per_message_rate, per_message_words = _best_rate(
        route_per_message, cluster, workload, "baseline"
    )
    batched_rate, batched_words = _best_rate(
        route_batched, cluster, workload, "batched"
    )
    assert batched_words == per_message_words, "engines disagree on words charged"
    rows = [
        {
            "engine": "per-message (seed)",
            "items": ITEMS,
            "items_per_sec": round(per_message_rate),
            "speedup": 1.0,
        },
        {
            "engine": "RoundPlan batched (PR 1)",
            "items": ITEMS,
            "items_per_sec": round(batched_rate),
            "speedup": round(batched_rate / per_message_rate, 2),
        },
    ]
    if HAS_NUMPY:
        columnar = _make_columnar_workload(workload)
        columnar_rate, columnar_words = _best_rate(
            route_columnar, cluster, columnar, "columnar"
        )
        assert columnar_words == per_message_words, (
            "columnar engine disagrees on words charged"
        )
        batched_record = next(
            r for r in reversed(cluster.ledger.records) if r.note == "batched"
        )
        columnar_record = cluster.ledger.records[-1]
        assert (
            batched_record.max_sent,
            batched_record.max_received,
            batched_record.items,
        ) == (
            columnar_record.max_sent,
            columnar_record.max_received,
            columnar_record.items,
        ), "columnar engine disagrees on per-round volumes"
        rows.append({
            "engine": "columnar send_indexed (numpy)",
            "items": ITEMS,
            "items_per_sec": round(columnar_rate),
            "speedup": round(columnar_rate / per_message_rate, 2),
        })
    return rows


def test_engine_throughput(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    publish(
        "engine_throughput",
        f"Round engine: items routed per second, {ITEMS}-item route",
        rows,
        ["engine", "items", "items_per_sec", "speedup"],
        persist=not SMOKE,
    )
    publish_perf(
        "engine_throughput",
        rows,
        params={"items": ITEMS, "num_small": 32, "repeats": REPEATS},
        persist=not SMOKE,
    )
    # Acceptance bars (small smoke sizes don't amortize the batching):
    # PR 1's >= 3x of batched over per-message, and this PR's >= 3x of the
    # columnar engine over the PR 1 batched path.
    if not SMOKE:
        assert rows[1]["speedup"] >= 3.0
        if HAS_NUMPY:
            assert rows[2]["speedup"] / rows[1]["speedup"] >= 3.0


if __name__ == "__main__":
    for row in run_comparison():
        print(row)
