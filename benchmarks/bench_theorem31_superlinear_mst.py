"""Theorem 3.1 superlinear-memory MST — a thin wrapper over the declarative scenario registry.

The sweep, measurements, and shape checks live in
``repro.experiments.registry`` under the scenario name ``theorem31_superlinear_mst``;
running this file publishes the text table and the JSON artifact that
``python -m repro report`` compiles into docs/REPRODUCTION.md.
"""

from _util import run_scenario_benchmark


def test_theorem31_superlinear_mst(benchmark):
    run_scenario_benchmark(benchmark, "theorem31_superlinear_mst")
