"""Thm 3.1 — MST with a superlinear large machine.

Paper: with large-machine memory n^{1+f}, MST takes
O(log(log(m/n) / (f log n))) rounds — more memory, fewer Borůvka steps,
down to 0 steps (pure KKT sampling) once n^f covers the density.
"""

import random

from repro.analysis import predicted_rounds
from repro.core.mst import heterogeneous_mst, planned_boruvka_steps
from repro.graph import generators
from repro.graph.validation import verify_mst
from repro.mpc import ModelConfig

from _util import publish

FS = (None, 0.25, 0.5, 1.0)  # None = near-linear (f = 1/log n)


def run_sweep() -> list[dict]:
    rng = random.Random(37)
    n, m = 90, 2700
    graph = generators.random_connected_graph(n, m, rng).with_unique_weights(rng)
    rows = []
    for f in FS:
        if f is None:
            config = ModelConfig.heterogeneous(n=n, m=m)
            label = "1/log n"
        else:
            config = ModelConfig.heterogeneous_superlinear(n=n, m=m, f=f)
            label = f
        result = heterogeneous_mst(graph, config=config, rng=random.Random(hash(str(f)) % 1000))
        assert verify_mst(graph, result.edges)
        rows.append(
            {
                "f": label,
                "planned_steps": planned_boruvka_steps(n, m, config.f),
                "measured_steps": result.boruvka_steps,
                "rounds": result.rounds,
                "theory~log(log(m/n)/(f log n))": predicted_rounds(
                    "mst", "heterogeneous", n=n, m=m, f=config.f
                ),
            }
        )
    return rows


def test_theorem31_superlinear_mst(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "theorem31_superlinear_mst",
        "Theorem 3.1: larger large-machine memory (f) => fewer Borůvka steps",
        rows,
        ["f", "planned_steps", "measured_steps", "rounds",
         "theory~log(log(m/n)/(f log n))"],
    )
    steps = [row["measured_steps"] for row in rows]
    assert steps == sorted(steps, reverse=True)
    assert steps[-1] == 0  # f = 1: pure sampling, O(1) rounds
