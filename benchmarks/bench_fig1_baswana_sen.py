"""Figure 1 / Lemma 4.3 modified Baswana-Sen — a thin wrapper over the declarative scenario registry.

The sweep, measurements, and shape checks live in
``repro.experiments.registry`` under the scenario name ``fig1_baswana_sen``;
running this file publishes the text table and the JSON artifact that
``python -m repro report`` compiles into docs/REPRODUCTION.md.
"""

from _util import run_scenario_benchmark


def test_fig1_baswana_sen(benchmark):
    run_scenario_benchmark(benchmark, "fig1_baswana_sen")
