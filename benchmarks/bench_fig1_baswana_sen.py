"""Fig1 / Lemma 4.3 — modified vs. classic Baswana–Sen.

Figure 1 illustrates the mechanism: on the sampled subgraph the large
machine re-clusters *fewer* nodes (fewer bold re-cluster edges) and removes
more, so the small machines add *more* removal edges.  Lemma 4.3 bounds the
blow-up: expected spanner size O(k n^{1+1/k} / p).

We sweep the sampling probability p and measure the re-cluster/removal
split plus the total size, with classic Baswana–Sen (p = 1) as reference.
"""

import random

from repro.core.spanner import modified_baswana_sen_local
from repro.graph import generators
from repro.graph.validation import spanner_stretch
from repro.local.baswana_sen import baswana_sen

from _util import publish

PROBABILITIES = (1.0, 0.5, 0.25, 0.1)
TRIALS = 5


def run_sweep() -> list[dict]:
    rng = random.Random(31)
    n, k = 70, 2
    graph = generators.gnm_random_graph(n, 1500, rng)
    edges = [(e[0], e[1]) for e in graph.edges]

    classic = baswana_sen(graph, k, random.Random(0))
    rows = [
        {
            "p": "classic",
            "recluster": len(classic.reclustered_edges),
            "removal": len(classic.removal_edges),
            "size": classic.size,
            "blowup_vs_classic": 1.0,
            "stretch": spanner_stretch(graph, classic.spanner),
        }
    ]
    for p in PROBABILITIES:
        sizes, reclusters, removals, stretches = [], [], [], []
        for seed in range(TRIALS):
            result = modified_baswana_sen_local(n, edges, k, p, random.Random(seed))
            sizes.append(len(result["spanner"]))
            reclusters.append(len(result["recluster_edges"]))
            removals.append(len(result["removal_edges"]))
        stretch = spanner_stretch(
            graph, modified_baswana_sen_local(n, edges, k, p, random.Random(99))["spanner"]
        )
        rows.append(
            {
                "p": p,
                "recluster": sum(reclusters) / TRIALS,
                "removal": sum(removals) / TRIALS,
                "size": sum(sizes) / TRIALS,
                "blowup_vs_classic": (sum(sizes) / TRIALS) / classic.size,
                "stretch": stretch,
            }
        )
    return rows


def test_fig1_modified_baswana_sen(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "fig1_baswana_sen",
        "Figure 1 / Lemma 4.3: smaller p => fewer re-clusterings, more "
        "removal edges, ~1/p size blow-up, stretch still 2k-1",
        rows,
        ["p", "recluster", "removal", "size", "blowup_vs_classic", "stretch"],
    )
    sampled = rows[1:]
    # Re-cluster edges shrink and removal edges grow as p decreases.
    assert sampled[-1]["recluster"] <= sampled[0]["recluster"]
    assert sampled[-1]["removal"] >= sampled[0]["removal"]
    # Stretch bound (2k-1 = 3) holds at every p.
    assert all(row["stretch"] <= 3.0 for row in rows)
    # Blow-up stays far below the worst-case 1/p envelope.
    assert sampled[-1]["blowup_vs_classic"] <= 1.0 / 0.1
