"""T1-conn — Connectivity row of Table 1.

Paper: sublinear O(log D + log log n) [11]  |  heterogeneous O(1) [1].

Sweep n; the heterogeneous sketch algorithm stays at a constant number of
rounds while the sublinear Borůvka baseline grows with log n.
"""

import random

from repro.baselines import sublinear_connectivity
from repro.core.connectivity import heterogeneous_connectivity
from repro.graph import generators
from repro.graph.traversal import component_labels

from _util import publish

SIZES = (32, 64, 128)


def run_sweep() -> list[dict]:
    rows = []
    for n in SIZES:
        rng = random.Random(n)
        graph = generators.planted_components_graph(n, 4, 2 * n, rng)
        truth = component_labels(graph)

        het = heterogeneous_connectivity(graph, rng=random.Random(n + 1))
        assert het.labels == truth
        sub = sublinear_connectivity(graph, rng=random.Random(n + 2))
        assert sub.labels == truth

        rows.append(
            {
                "n": n,
                "m": graph.m,
                "het_rounds": het.rounds,
                "sub_rounds": sub.rounds,
                "theory_het": "O(1)",
                "theory_sub": "~log n",
            }
        )
    return rows


def test_table1_connectivity(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "table1_connectivity",
        "Table 1 / Connectivity: heterogeneous O(1) vs sublinear Borůvka",
        rows,
        ["n", "m", "het_rounds", "sub_rounds", "theory_het", "theory_sub"],
    )
    het_rounds = [row["het_rounds"] for row in rows]
    assert max(het_rounds) <= 8  # constant across the sweep
    assert rows[-1]["sub_rounds"] > max(het_rounds)
