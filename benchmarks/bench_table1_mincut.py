"""Table 1 min-cut rows (Thms C.3/C.4) — a thin wrapper over the declarative scenario registry.

The sweep, measurements, and shape checks live in
``repro.experiments.registry`` under the scenario name ``table1_mincut``;
running this file publishes the text table and the JSON artifact that
``python -m repro report`` compiles into docs/REPRODUCTION.md.
"""

from _util import run_scenario_benchmark


def test_table1_mincut(benchmark):
    run_scenario_benchmark(benchmark, "table1_mincut")
