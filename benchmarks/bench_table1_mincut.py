"""T1-mincut — the two min-cut rows of Table 1.

Paper: exact unweighted O(1) [32]; (1±ε) weighted O(1) [31]
(sublinear: O(polylog n) / O(log n log log n)).

Planted-cut graphs; verify exactness / (1±ε) accuracy against the
sequential Stoer–Wagner oracle and constant round counts.
"""

import random

from repro.core.mincut import approximate_weighted_mincut, exact_unweighted_mincut
from repro.graph import generators
from repro.local.mincut import min_cut_value

from _util import publish

CUTS = (2, 4, 6)


def run_sweep() -> list[dict]:
    rows = []
    for cut in CUTS:
        rng = random.Random(cut)
        graph = generators.planted_cut_graph(40, cut, 4.0, rng)
        truth = min_cut_value(graph.n, graph.edges)
        exact = exact_unweighted_mincut(graph, rng=random.Random(cut + 1), attempts=14)

        weighted = graph.with_unique_weights(rng)
        wtruth = min_cut_value(weighted.n, weighted.edges)
        approx = approximate_weighted_mincut(
            weighted, epsilon=0.4, rng=random.Random(cut + 2)
        )
        rows.append(
            {
                "planted_cut": cut,
                "true_cut": truth,
                "exact_value": exact.value,
                "exact_rounds": exact.rounds,
                "w_true": wtruth,
                "w_estimate": approx.value,
                "w_ratio": approx.value / wtruth,
                "w_rounds": approx.rounds,
            }
        )
    return rows


def test_table1_mincut(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "table1_mincut",
        "Table 1 / min-cut: exact unweighted O(1) + (1±eps) weighted O(1)",
        rows,
        ["planted_cut", "true_cut", "exact_value", "exact_rounds",
         "w_true", "w_estimate", "w_ratio", "w_rounds"],
    )
    for row in rows:
        assert row["exact_value"] == row["true_cut"]
        assert 0.55 <= row["w_ratio"] <= 1.45
        assert row["w_rounds"] <= 12
