"""1v2 — the 1-vs-2 cycle problem (Section 1).

The conjectured-Ω(log n) core of sublinear hardness becomes a single round
with one near-linear machine.  Sweep n: the heterogeneous solver stays at
1 round while the sublinear pointer/Borůvka baseline grows with log n.
"""

import math
import random

from repro.baselines import sublinear_connectivity
from repro.core.cycle import solve_one_vs_two_cycles
from repro.graph import generators

from _util import publish

SIZES = (32, 64, 128, 256)


def run_sweep() -> list[dict]:
    rows = []
    for n in SIZES:
        rng = random.Random(n)
        graph, truth = generators.one_or_two_cycles(n, rng)
        het = solve_one_vs_two_cycles(graph, rng=random.Random(n + 1))
        assert het.num_cycles == truth
        sub = sublinear_connectivity(graph, rng=random.Random(n + 2))
        assert len(set(sub.labels)) == truth
        rows.append(
            {
                "n": n,
                "true_cycles": truth,
                "het_rounds": het.rounds,
                "sub_rounds": sub.rounds,
                "theory_sub~log n": round(math.log2(n), 1),
            }
        )
    return rows


def test_cycle_problem(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "cycle_problem",
        "1-vs-2 cycles: trivial (1 round) with one near-linear machine",
        rows,
        ["n", "true_cycles", "het_rounds", "sub_rounds", "theory_sub~log n"],
    )
    assert all(row["het_rounds"] == 1 for row in rows)
    sub_rounds = [row["sub_rounds"] for row in rows]
    assert sub_rounds[-1] > sub_rounds[0]  # grows with n
