"""the 1-vs-2 cycle problem (Section 1) — a thin wrapper over the declarative scenario registry.

The sweep, measurements, and shape checks live in
``repro.experiments.registry`` under the scenario name ``cycle_problem``;
running this file publishes the text table and the JSON artifact that
``python -m repro report`` compiles into docs/REPRODUCTION.md.
"""

from _util import run_scenario_benchmark


def test_cycle_problem(benchmark):
    run_scenario_benchmark(benchmark, "cycle_problem")
