"""T1-matching / Thm 5.1 — maximal matching row of Table 1.

Paper: sublinear O(sqrt(log Δ) log log Δ + sqrt(log log n)) [33]  |
heterogeneous O(sqrt(log(m/n) log log(m/n))) [new]  |  near-linear
O(log log Δ) [13].

Sweep the average degree d = 2m/n; report measured rounds, the phase-1
substitute's iteration count, the theoretical phase-1 charge from [33],
and the paper's sqrt-shaped bound.
"""

import random

from repro.analysis import predicted_rounds
from repro.baselines import sublinear_matching
from repro.core.matching import heterogeneous_matching, low_degree_phase_rounds
from repro.graph import generators
from repro.graph.validation import is_maximal_matching

from _util import publish

DENSITIES = (2, 8, 24)


def run_sweep() -> list[dict]:
    rows = []
    n = 80
    for density in DENSITIES:
        rng = random.Random(density)
        m = min(n * (n - 1) // 2, n * density)
        graph = generators.random_connected_graph(n, m, rng)

        het = heterogeneous_matching(graph, rng=random.Random(density + 1))
        assert is_maximal_matching(graph, het.matching)
        sub = sublinear_matching(graph, rng=random.Random(density + 2))
        assert is_maximal_matching(graph, sub.matching)

        rows.append(
            {
                "avg_degree": round(graph.average_degree, 1),
                "het_rounds": het.rounds,
                "phase1_iters": het.phase1_iterations,
                "gu_charge": round(low_degree_phase_rounds(graph.max_degree), 1),
                "sub_rounds": sub.rounds,
                "theory_het~sqrt": predicted_rounds(
                    "matching", "heterogeneous", n=n, m=m
                ),
            }
        )
    return rows


def test_table1_matching(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "table1_matching",
        "Table 1 / maximal matching: O(sqrt(log d log log d)) heterogeneous",
        rows,
        ["avg_degree", "het_rounds", "phase1_iters", "gu_charge", "sub_rounds",
         "theory_het~sqrt"],
    )
    # Rounds grow slowly with density (the sqrt-log shape), never linearly.
    het = [row["het_rounds"] for row in rows]
    assert het[-1] <= 3 * het[0]
