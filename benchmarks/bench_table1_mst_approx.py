"""T1-mst-approx — (1+ε)-approximate MST row of Table 1.

Paper: heterogeneous O(1) rounds [1] (no better-than-exact result is known
in the sublinear regime).

Sweep ε and check (a) rounds stay constant, (b) the estimate lands in
[MST, (1+ε+slack) MST].
"""

import random

from repro.core.mst_approx import approximate_mst_weight
from repro.graph import generators
from repro.local.mst import kruskal

from _util import publish

EPSILONS = (1.0, 0.5, 0.25)


def run_sweep() -> list[dict]:
    rng = random.Random(17)
    graph = generators.random_connected_graph(48, 220, rng).with_unique_weights(rng)
    truth = sum(e[2] for e in kruskal(graph))
    rows = []
    for epsilon in EPSILONS:
        result = approximate_mst_weight(
            graph, epsilon=epsilon, rng=random.Random(int(epsilon * 100)), copies=2
        )
        rows.append(
            {
                "epsilon": epsilon,
                "true_mst": truth,
                "estimate": result.estimate,
                "ratio": result.estimate / truth,
                "thresholds": len(result.thresholds),
                "rounds": result.rounds,
                "theory": "O(1)",
            }
        )
    return rows


def test_table1_mst_approx(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "table1_mst_approx",
        "Table 1 / (1+eps)-approx MST: O(1) rounds, estimate within band",
        rows,
        ["epsilon", "true_mst", "estimate", "ratio", "thresholds", "rounds", "theory"],
    )
    for row in rows:
        assert 1.0 <= row["ratio"] <= 1.0 + row["epsilon"] + 0.4
        assert row["rounds"] <= 8
