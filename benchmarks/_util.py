"""Shared helpers for the benchmark harness.

Scenario benchmarks are thin wrappers: :func:`run_scenario_benchmark`
looks the scenario up in ``repro.experiments.registry``, executes it
through the shared ``Runner``, prints the table (visible with ``pytest
benchmarks/ --benchmark-only -s``) and persists both the text table and
the ``repro.bench/2`` JSON artifact to ``benchmarks/results/`` — the
inputs ``python -m repro report`` turns into ``docs/REPRODUCTION.md``.
(``python -m repro bench all --json`` additionally maintains the
``suite.json`` roll-up; single-scenario wrappers leave it untouched.)

The stand-alone throughput benchmarks still use :func:`publish` directly.
Setting ``REPRO_BENCH_SMOKE=1`` switches scenario runs to quick sizing
and disables persistence (CI smoke runs must not clobber committed
artifacts).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Sequence

from repro.analysis import render_table
from repro.experiments import Runner, ScenarioRun, get_scenario
from repro.experiments.artifacts import text_header
from repro.env import env_flag

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Machine-performance artifacts (items/s trajectories) live in their own
#: subdirectory with their own schema: they are measurements of *this*
#: machine, not of the model, so they are excluded from the byte-stable
#: ``repro.bench/2`` artifact set that `repro report --check` validates.
#: ``REPRO_PERF_DIR`` redirects them (and forces persistence even under
#: smoke sizing) so CI can measure into a scratch directory and feed
#: ``scripts/perf_gate.py`` without touching the committed baselines.
PERF_DIR = RESULTS_DIR / "perf"

PERF_SCHEMA_VERSION = "repro.perf/1"

SMOKE = env_flag("REPRO_BENCH_SMOKE")


def publish(
    experiment: str,
    title: str,
    rows: Sequence[dict[str, Any]],
    columns: Sequence[str],
    persist: bool = True,
) -> str:
    """Render, print, and (unless *persist* is false — e.g. CI smoke runs
    at tiny sizes) persist one experiment table.  Persisted text carries a
    schema-version header line so text and JSON artifacts stay
    correlated."""
    table = render_table(rows, columns)
    text = f"{title}\n{'=' * len(title)}\n{table}\n"
    print("\n" + text)
    if persist:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"{experiment}.txt").write_text(
            text_header(experiment) + text
        )
    return text


def publish_perf(
    benchmark_name: str,
    rows: Sequence[dict[str, Any]],
    params: dict[str, Any] | None = None,
    persist: bool = True,
) -> dict[str, Any]:
    """Persist one ``repro.perf/1`` throughput artifact.

    Schema (one JSON object per benchmark, ``results/perf/<name>.json``)::

        {"schema": "repro.perf/1",
         "benchmark": "engine_throughput",     # artifact name
         "params":    {"items": 100000, ...},  # workload sizing knobs
         "rows":      [{"engine": ..., "items_per_sec": ..., ...}, ...]}

    Rows hold only JSON scalars.  Unlike ``repro.bench/2`` artifacts these
    are *not* byte-deterministic (items/s measures this machine); the
    committed files record the perf trajectory across PRs, one entry per
    engine generation.
    """
    obj = {
        "schema": PERF_SCHEMA_VERSION,
        "benchmark": benchmark_name,
        "params": dict(params or {}),
        "rows": [dict(row) for row in rows],
    }
    override = os.environ.get("REPRO_PERF_DIR")
    if persist or override:
        perf_dir = pathlib.Path(override) if override else PERF_DIR
        perf_dir.mkdir(parents=True, exist_ok=True)
        path = perf_dir / f"{benchmark_name}.json"
        path.write_text(json.dumps(obj, indent=2, sort_keys=True) + "\n")
    return obj


def run_scenario_benchmark(benchmark, name: str) -> ScenarioRun:
    """Run registry scenario *name* under pytest-benchmark and persist its
    artifacts (text + JSON).  ``REPRO_BENCH_SMOKE=1`` runs quick sizing
    without persisting."""
    scenario = get_scenario(name)
    runner = Runner(results_dir=None if SMOKE else RESULTS_DIR)
    run = benchmark.pedantic(
        lambda: runner.run(scenario, quick=SMOKE), rounds=1, iterations=1
    )
    runner.persist(run, json_artifact=True)
    print("\n" + run.render_text())
    return run
