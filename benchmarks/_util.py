"""Shared helpers for the benchmark harness.

Every benchmark renders its paper-vs-measured table, prints it (visible
with ``pytest benchmarks/ --benchmark-only -s``) and writes it to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote real
artifacts.
"""

from __future__ import annotations

import pathlib
from typing import Any, Sequence

from repro.analysis import render_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(
    experiment: str,
    title: str,
    rows: Sequence[dict[str, Any]],
    columns: Sequence[str],
    persist: bool = True,
) -> str:
    """Render, print, and (unless *persist* is false — e.g. CI smoke runs
    at tiny sizes) persist one experiment table."""
    table = render_table(rows, columns)
    text = f"{title}\n{'=' * len(title)}\n{table}\n"
    print("\n" + text)
    if persist:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{experiment}.txt").write_text(text)
    return text
