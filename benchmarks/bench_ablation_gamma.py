"""Ablation — the small-machine memory exponent γ.

γ controls everything about the deployment: the number of small machines
(m/n^γ), their capacity (n^γ polylog), and the fanout (and hence depth
O((1-γ)/γ)) of the Claims 2–3 trees.  This ablation sweeps γ and measures
the machine counts and the *measured* round cost of one sort + one
aggregation + one edge annotation, the primitives every algorithm is built
from.
"""

import random

from repro.graph import generators
from repro.mpc import Cluster, ModelConfig
from repro.primitives.edgestore import EdgeStore

from _util import publish

GAMMAS = (0.25, 0.5, 0.75)


def run_sweep() -> list[dict]:
    rng = random.Random(59)
    n, m = 100, 2000
    graph = generators.random_connected_graph(n, m, rng).with_unique_weights(rng)
    rows = []
    for gamma in GAMMAS:
        config = ModelConfig.heterogeneous(n=n, m=m, gamma=gamma)
        cluster = Cluster(config, rng=random.Random(int(gamma * 100)))
        store = EdgeStore.create(cluster, graph.edges)

        before = cluster.ledger.rounds
        store.sort(key=lambda e: e[2])
        sort_rounds = cluster.ledger.rounds - before

        before = cluster.ledger.rounds
        store.aggregate(lambda e: (e[0], 1), lambda a, b: a + b)
        aggregate_rounds = cluster.ledger.rounds - before

        before = cluster.ledger.rounds
        store.annotate({v: v for v in range(n)})
        annotate_rounds = cluster.ledger.rounds - before

        rows.append(
            {
                "gamma": gamma,
                "machines": config.num_small,
                "capacity": config.small_capacity,
                "fanout": config.tree_fanout,
                "sort_rounds": sort_rounds,
                "aggregate_rounds": aggregate_rounds,
                "annotate_rounds": annotate_rounds,
            }
        )
    return rows


def test_ablation_gamma(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "ablation_gamma",
        "Ablation / γ: machine count vs capacity vs primitive round costs",
        rows,
        ["gamma", "machines", "capacity", "fanout", "sort_rounds",
         "aggregate_rounds", "annotate_rounds"],
    )
    machines = [row["machines"] for row in rows]
    assert machines == sorted(machines, reverse=True)  # fewer, fatter machines
    # Deeper trees at small gamma: aggregation cannot get cheaper as gamma
    # shrinks.
    assert rows[0]["aggregate_rounds"] >= rows[-1]["aggregate_rounds"]
