"""Vectorized sketch substrate throughput: SketchBank vs the seed object stack.

Builds the full AGM sketch state (every ``(phase, copy, level)`` one-sparse
counter for every touched vertex) for a 100k-edge random graph through
three implementations:

* *object (seed)*: a frozen transplant of the seed per-object stack — one
  ``L0Sampler`` per ``(vertex, phase, copy)`` wrapping one
  ``OneSparseSketch`` per level, updated per endpoint with per-object
  method dispatch, one Horner hash call per (endpoint, sampler) and one
  ``pow`` per touched level;
* *bank (pure)*: ``SketchBank.update_edges`` on the pure-Python backend —
  batched Horner over the whole edge vector, per-edge depths and
  fingerprint powers computed once and applied ``+1``/``-1`` to both
  endpoint rows, powers served from baby-step/giant-step tables;
* *bank (numpy)*: the same bank fed by the vectorized uint64 kernels
  (optional ``[fast]`` extra).

All three must produce bit-identical counters (asserted).  The table
reports edge updates per second and the speedup over the seed path; the
tentpole's acceptance bar is >= 5x for the pure-Python bank.

Environment knobs (the CI smoke job shrinks both):
``REPRO_BENCH_SKETCH_EDGES`` (default 100000), ``REPRO_BENCH_SKETCH_N``
(default 2048), ``REPRO_BENCH_SMOKE=1`` (don't persist the results table).
"""

import os
import random
import time

from repro.sketches import GraphSketchSpec, SketchBank
from repro.sketches.backend import HAS_NUMPY
from repro.sketches.field import PRIME, trailing_zeros
from repro.env import env_flag

from _util import publish, publish_perf

EDGES = int(os.environ.get("REPRO_BENCH_SKETCH_EDGES", "100000"))
N = int(os.environ.get("REPRO_BENCH_SKETCH_N", "2048"))
SMOKE = env_flag("REPRO_BENCH_SMOKE")


# ----------------------------------------------------------------------
# Frozen seed implementation (pre-SketchBank object stack), so the
# baseline cannot silently change as the live object API evolves.
# ----------------------------------------------------------------------
class _SeedOneSparse:
    __slots__ = ("z", "s0", "s1", "s2")

    def __init__(self, z):
        self.z = z
        self.s0 = 0
        self.s1 = 0
        self.s2 = 0

    def update(self, index, delta):
        self.s0 += delta
        self.s1 += index * delta
        self.s2 = (self.s2 + delta * pow(self.z, index, PRIME)) % PRIME


class _SeedL0Sampler:
    __slots__ = ("seeds", "levels")

    def __init__(self, seeds):
        self.seeds = seeds
        self.levels = [_SeedOneSparse(z) for z in seeds.z_points]

    def update(self, index, delta):
        if delta == 0:
            return
        depth = trailing_zeros(self.seeds.level_hash(index + 1))
        top = min(depth, len(self.levels) - 1)
        for level in range(top + 1):
            self.levels[level].update(index, delta)


class _SeedVertexSketch:
    __slots__ = ("spec", "vertex", "samplers")

    def __init__(self, spec, vertex):
        self.spec = spec
        self.vertex = vertex
        self.samplers = [
            [_SeedL0Sampler(seed) for seed in phase_seeds]
            for phase_seeds in spec.seeds
        ]

    def add_edge(self, u, v):
        lo, hi = (u, v) if u < v else (v, u)
        identifier = lo * self.spec.n + hi
        sign = 1 if self.vertex == lo else -1
        for phase in self.samplers:
            for sampler in phase:
                sampler.update(identifier, sign)


def make_edges():
    rng = random.Random(42)
    edges = []
    seen = set()
    while len(edges) < EDGES:
        u, v = rng.randrange(N), rng.randrange(N)
        if u == v or (u, v) in seen or (v, u) in seen:
            continue
        seen.add((u, v))
        edges.append((u, v))
    return edges


def build_seed_objects(spec, edges):
    sketches = {}
    for u, v in edges:
        for endpoint in (u, v):
            sketch = sketches.get(endpoint)
            if sketch is None:
                sketch = sketches[endpoint] = _SeedVertexSketch(spec, endpoint)
            sketch.add_edge(u, v)
    return sketches


def build_bank(spec, edges, backend):
    bank = SketchBank(spec, backend=backend)
    bank.update_edges(edges)
    return bank


def assert_equal_state(seed_sketches, bank):
    assert sorted(seed_sketches) == sorted(bank.vertices), "vertex sets differ"
    for vertex, sketch in seed_sketches.items():
        row = bank.row(vertex)
        index = 0
        for phase in sketch.samplers:
            for sampler in phase:
                for level in sampler.levels:
                    assert (
                        level.s0 == row.s0[index]
                        and level.s1 == row.s1[index]
                        and level.s2 == row.s2[index]
                    ), f"counter mismatch at vertex {vertex}, slot {index}"
                    index += 1


def run_comparison():
    spec = GraphSketchSpec.generate(N, random.Random(7), copies=3)
    edges = make_edges()

    start = time.perf_counter()
    seed_sketches = build_seed_objects(spec, edges)
    seed_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    bank_pure = build_bank(spec, edges, backend="pure")
    pure_elapsed = time.perf_counter() - start
    assert_equal_state(seed_sketches, bank_pure)

    rows = [
        {
            "implementation": "object stack (seed)",
            "edges": EDGES,
            "edges_per_sec": round(EDGES / seed_elapsed),
            "speedup": 1.0,
        },
        {
            "implementation": "SketchBank (pure)",
            "edges": EDGES,
            "edges_per_sec": round(EDGES / pure_elapsed),
            "speedup": round(seed_elapsed / pure_elapsed, 2),
        },
    ]

    if HAS_NUMPY:
        start = time.perf_counter()
        bank_np = build_bank(spec, edges, backend="numpy")
        np_elapsed = time.perf_counter() - start
        assert_equal_state(seed_sketches, bank_np)
        rows.append(
            {
                "implementation": "SketchBank (numpy)",
                "edges": EDGES,
                "edges_per_sec": round(EDGES / np_elapsed),
                "speedup": round(seed_elapsed / np_elapsed, 2),
            }
        )
    return rows


def test_sketch_throughput(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    publish(
        "sketch_throughput",
        f"Sketch substrate: edge updates per second, {EDGES}-edge graph (n={N})",
        rows,
        ["implementation", "edges", "edges_per_sec", "speedup"],
        persist=not SMOKE,
    )
    publish_perf(
        "sketch_throughput",
        rows,
        params={"edges": EDGES, "n": N, "copies": 3},
        persist=not SMOKE,
    )
    # The tentpole's acceptance bar: >= 5x over the seed object path in
    # pure Python (small smoke sizes don't amortize the batching).
    if not SMOKE:
        assert rows[1]["speedup"] >= 5.0


if __name__ == "__main__":
    for row in run_comparison():
        print(row)
