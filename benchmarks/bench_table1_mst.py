"""Table 1 MST row (Thm 1.2/3.1) — a thin wrapper over the declarative scenario registry.

The sweep, measurements, and shape checks live in
``repro.experiments.registry`` under the scenario name ``table1_mst``;
running this file publishes the text table and the JSON artifact that
``python -m repro report`` compiles into docs/REPRODUCTION.md.
"""

from _util import run_scenario_benchmark


def test_table1_mst(benchmark):
    run_scenario_benchmark(benchmark, "table1_mst")
