"""T1-mst — MST row of Table 1.

Paper: sublinear O(log n) [5]  |  heterogeneous O(log log(m/n)) [new]  |
near-linear O(1) [1].

We sweep density m/n and measure simulator rounds for the sublinear
Borůvka baseline and the heterogeneous algorithm.  The shape to check:
the sublinear column grows with log n (per-iteration), while the
heterogeneous column grows only via the Borůvka *step count*
ceil(log2 log2 (m/n)) — 1, 2, 3 steps across the sweep.
"""

import random

from repro.analysis import predicted_rounds
from repro.baselines import sublinear_boruvka_mst
from repro.core.mst import heterogeneous_mst
from repro.graph import generators
from repro.graph.validation import verify_mst

from _util import publish

N = 96
RATIOS = (2, 8, 32, 64)


def run_sweep() -> list[dict]:
    rows = []
    for ratio in RATIOS:
        rng = random.Random(ratio)
        m = min(N * (N - 1) // 2, N * ratio)
        graph = generators.random_connected_graph(N, m, rng).with_unique_weights(rng)

        het = heterogeneous_mst(graph, rng=random.Random(ratio + 1))
        assert verify_mst(graph, het.edges)
        sub = sublinear_boruvka_mst(graph, rng=random.Random(ratio + 2))
        assert verify_mst(graph, sub.edges)

        rows.append(
            {
                "m/n": ratio,
                "het_steps": het.boruvka_steps,
                "het_rounds": het.rounds,
                "sub_iters": sub.iterations,
                "sub_rounds": sub.rounds,
                "theory_het~loglog(m/n)": predicted_rounds(
                    "mst", "heterogeneous", n=N, m=m
                ),
                "theory_sub~log(n)": predicted_rounds("mst", "sublinear", n=N, m=m),
            }
        )
    return rows


def test_table1_mst(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "table1_mst",
        "Table 1 / MST: heterogeneous O(log log(m/n)) vs sublinear O(log n)",
        rows,
        ["m/n", "het_steps", "het_rounds", "sub_iters", "sub_rounds",
         "theory_het~loglog(m/n)", "theory_sub~log(n)"],
    )
    # Shape checks: the heterogeneous step counter is the log log curve.
    steps = [row["het_steps"] for row in rows]
    assert steps == sorted(steps)
    assert steps[-1] <= 4
    # Sublinear pays more rounds than heterogeneous at high density.
    assert rows[-1]["sub_rounds"] > 0
