"""Throttle-layer overhead on the hot columnar route.

The feedback-control layer must be free when it has nothing to do: with
ample capacities (no round near the headroom line) an enforcing
controller still pays its bookkeeping on every round — the
``split_plan`` early-exit (per-machine volume tallies over the cached
run columns) and the post-round estimator feed — and that bookkeeping
must stay within 5% of the unthrottled route.

The workload is the 100k-item columnar route of
``bench_engine_throughput``: each of 32 machines scatters its share via
``RoundPlan.send_indexed``, one synchronous round per repetition,
capacities sized so no machine exceeds ~30% of its budget (the
controller observes but never intervenes — asserted: zero splits, zero
events).  The table reports items/s with throttling off vs enforced and
the relative overhead; the committed artifact records the trajectory
across PRs.
"""

import os
import random
import time

from repro.mpc import Cluster, ModelConfig, RoundPlan, get_engine_backend
from repro.mpc.backend import HAS_NUMPY
from repro.env import env_flag

from _util import publish, publish_perf

ITEMS = int(os.environ.get("REPRO_BENCH_ITEMS", "100000"))
SMOKE = env_flag("REPRO_BENCH_SMOKE")
REPEATS = 5
OVERHEAD_BAR = 0.05


def _make_cluster(mode: str) -> Cluster:
    config = ModelConfig.heterogeneous(n=4096, m=ITEMS, num_small=32)
    if mode != "off":
        config = config.with_throttle(mode)
    return Cluster(config, rng=random.Random(0))


def _make_columnar_workload(cluster: Cluster):
    import numpy as np

    rng = random.Random(42)
    ids = cluster.small_ids
    per_machine = ITEMS // len(ids)
    workload = {}
    for src in ids:
        dsts = [ids[rng.randrange(len(ids))] for _ in range(per_machine)]
        rows = [
            (rng.randrange(4096), rng.randrange(4096), rng.randrange(10**6))
            for _ in range(per_machine)
        ]
        workload[src] = (
            np.asarray(dsts, dtype=np.int64),
            np.asarray(rows, dtype=np.int64),
        )
    return workload


def _route(cluster: Cluster, columnar, note: str) -> int:
    plan = RoundPlan(note=note, backend=get_engine_backend("numpy"))
    for src, (dsts, rows) in columnar.items():
        plan.send_indexed(src, dsts, rows)
    cluster.execute(plan)
    return cluster.ledger.records[-1].total_words


def _best_rate(cluster: Cluster, columnar, note: str) -> tuple[float, int]:
    best = float("inf")
    words = 0
    for _ in range(REPEATS):
        start = time.perf_counter()
        words = _route(cluster, columnar, note)
        best = min(best, time.perf_counter() - start)
    return ITEMS / best, words


def run_comparison() -> list[dict]:
    rows = []
    rates = {}
    words = {}
    for mode in ("off", "enforce"):
        cluster = _make_cluster(mode)
        columnar = _make_columnar_workload(cluster)
        rates[mode], words[mode] = _best_rate(cluster, columnar, mode)
        assert not cluster.ledger.violations, "workload must fit capacities"
        if mode == "enforce":
            # The controller observed every round but never intervened.
            assert cluster.throttle is not None
            assert cluster.throttle.splits == 0
            assert not cluster.throttle.events
            assert cluster.throttle.estimator.observations == REPEATS
        rows.append({
            "throttle": mode,
            "items": ITEMS,
            "items_per_sec": round(rates[mode]),
        })
    assert words["off"] == words["enforce"], "throttled route charged differently"
    overhead = max(0.0, 1.0 - rates["enforce"] / rates["off"])
    rows[1]["overhead_pct"] = round(100.0 * overhead, 2)
    rows[0]["overhead_pct"] = 0.0
    return rows


def test_throttle_overhead(benchmark):
    if not HAS_NUMPY:
        import pytest

        pytest.skip("columnar route requires numpy")
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    publish(
        "throttle_overhead",
        f"Throttle controller overhead, {ITEMS}-item columnar route",
        rows,
        ["throttle", "items", "items_per_sec", "overhead_pct"],
        persist=not SMOKE,
    )
    publish_perf(
        "throttle_overhead",
        rows,
        params={"items": ITEMS, "num_small": 32, "repeats": REPEATS},
        persist=not SMOKE,
    )
    # Acceptance bar: an idle controller costs <= 5% on the hot route
    # (tiny smoke sizes don't amortize the fixed per-round bookkeeping).
    if not SMOKE:
        assert rows[1]["overhead_pct"] <= 100.0 * OVERHEAD_BAR, (
            f"idle throttle overhead {rows[1]['overhead_pct']}% exceeds 5%"
        )


if __name__ == "__main__":
    for row in run_comparison():
        print(row)
