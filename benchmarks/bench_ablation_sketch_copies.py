"""Ablation — ℓ₀-sampler copies per Borůvka phase.

A single ℓ₀-sampler recovers a cut edge only with constant probability;
Theorem C.1's implementation keeps several independent copies per phase.
This ablation measures the connectivity success rate as a function of the
copy count, justifying the default of 3.
"""

import random

from repro.graph import generators
from repro.graph.traversal import component_labels
from repro.sketches import GraphSketchSpec, VertexSketch, components_from_sketches

from _util import publish

COPIES = (1, 2, 3)
TRIALS = 12


def run_sweep() -> list[dict]:
    base_rng = random.Random(53)
    n = 40
    graph = generators.planted_components_graph(n, 4, 40, base_rng)
    truth = component_labels(graph)
    rows = []
    for copies in COPIES:
        successes = 0
        for seed in range(TRIALS):
            rng = random.Random(1000 * copies + seed)
            spec = GraphSketchSpec.generate(n, rng, copies=copies)
            sketches = {v: VertexSketch(spec, v) for v in range(n)}
            for u, v in graph.edges:
                sketches[u].add_edge(u, v)
                sketches[v].add_edge(u, v)
            if components_from_sketches(spec, sketches) == truth:
                successes += 1
        words = VertexSketch(
            GraphSketchSpec.generate(n, random.Random(0), copies=copies), 0
        ).word_size()
        rows.append(
            {
                "copies": copies,
                "success_rate": successes / TRIALS,
                "sketch_words_per_vertex": words,
            }
        )
    return rows


def test_ablation_sketch_copies(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "ablation_sketch_copies",
        "Ablation / Theorem C.1: sampler copies vs connectivity success rate",
        rows,
        ["copies", "success_rate", "sketch_words_per_vertex"],
    )
    rates = [row["success_rate"] for row in rows]
    assert rates[-1] >= rates[0]
    assert rates[-1] >= 0.9  # the default (3 copies) is reliable
    words = [row["sketch_words_per_vertex"] for row in rows]
    assert words == sorted(words)  # the price: linearly larger sketches
