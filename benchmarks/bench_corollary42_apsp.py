"""Corollary 4.2 approximate APSP — a thin wrapper over the declarative scenario registry.

The sweep, measurements, and shape checks live in
``repro.experiments.registry`` under the scenario name ``corollary42_apsp``;
running this file publishes the text table and the JSON artifact that
``python -m repro report`` compiles into docs/REPRODUCTION.md.
"""

from _util import run_scenario_benchmark


def test_corollary42_apsp(benchmark):
    run_scenario_benchmark(benchmark, "corollary42_apsp")
