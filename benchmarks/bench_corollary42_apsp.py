"""Cor 4.2 — O(log n)-approximate APSP in O(1) rounds.

Build the k = ceil(log2 n) spanner, store it on the large machine, answer
all-pairs queries locally; report the stretch distribution.
"""

import math
import random

from repro.core.spanner import build_apsp_oracle
from repro.graph import generators
from repro.graph.traversal import bfs_distances

from _util import publish

SIZES = (40, 80)


def run_sweep() -> list[dict]:
    rows = []
    for n in SIZES:
        rng = random.Random(n)
        graph = generators.random_connected_graph(n, 5 * n, rng)
        oracle = build_apsp_oracle(graph, rng=random.Random(n + 1))
        worst = 1.0
        total_ratio = 0.0
        pairs = 0
        for source in range(0, n, max(1, n // 10)):
            truth = bfs_distances(graph, source)
            approx = oracle.distances_from(source)
            for v in range(n):
                if truth[v] > 0 and not math.isinf(truth[v]):
                    ratio = approx[v] / truth[v]
                    worst = max(worst, ratio)
                    total_ratio += ratio
                    pairs += 1
        rows.append(
            {
                "n": n,
                "spanner_size": oracle.spanner.size,
                "m": graph.m,
                "k": oracle.spanner.k,
                "stretch_bound": oracle.stretch_bound,
                "worst_stretch": worst,
                "mean_stretch": total_ratio / pairs,
                "rounds": oracle.rounds,
            }
        )
    return rows


def test_corollary42_apsp(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "corollary42_apsp",
        "Corollary 4.2: O(log n)-approx APSP from an O~(n)-size spanner",
        rows,
        ["n", "spanner_size", "m", "k", "stretch_bound", "worst_stretch",
         "mean_stretch", "rounds"],
    )
    for row in rows:
        assert row["worst_stretch"] <= row["stretch_bound"]
        assert row["spanner_size"] <= row["m"]
