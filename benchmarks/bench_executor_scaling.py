"""Executor-seam scaling: process-parallel per-machine compute.

Times the 100k-item columnar sort route (the hottest local-step
workload: per-machine partition + rank kernels under ``sample_sort``) on
an 8-small-machine cluster across executor generations — serial, and a
process pool at 1/2/4 workers (``ModelConfig.with_executor``) — plus one
``huge``-tier registry scenario (``table1_connectivity_huge``) under
serial vs process to show the seam composes with a full algorithm run.

Every leg asserts bit-identical datasets and ledgers against the serial
baseline before reporting: executors only move *where* pure local-step
kernels run, never what they compute or what the coordinator charges.

Acceptance bar (skipped under ``REPRO_BENCH_SMOKE=1`` and on boxes with
fewer than 4 CPUs, where a process pool cannot physically scale): the
4-worker process executor reaches >= 1.8x the serial items/s on the
columnar sort route.  The committed baseline records this machine's
honest numbers either way — ``scripts/perf_gate.py`` fails only on
drops, so a 1-CPU baseline never masks a future regression.

``REPRO_BENCH_EXECUTOR_ITEMS`` overrides the sort-route workload size.
"""

from __future__ import annotations

import os
import random
import time

from repro.experiments import Runner, get_scenario
from repro.mpc.cluster import Cluster
from repro.mpc.config import ModelConfig
from repro.mpc.executor import forced_executor, shutdown_pools
from repro.primitives.columnar import EdgeBlock, ingest_rows
from repro.primitives.sort import sample_sort
from repro.env import env_flag

from _util import publish, publish_perf

SMOKE = env_flag("REPRO_BENCH_SMOKE")
ITEMS = int(
    os.environ.get("REPRO_BENCH_EXECUTOR_ITEMS", "4000" if SMOKE else "100000")
)
#: Few machines => large per-machine shards, so per-task pool overhead is
#: amortized (the regime the executor seam targets).
NUM_SMALL = 8
REPEATS = 1 if SMOKE else 3
#: (executor, workers) legs of the sort route; workers=0 means serial.
LEGS = (("serial", 0), ("process", 1), ("process", 2), ("process", 4))

_rng = random.Random(42)
EDGES = [
    (_rng.randrange(100000), _rng.randrange(100000), _rng.randrange(1000000))
    for _ in range(ITEMS)
]


def _sort_once(executor: str, workers: int):
    config = ModelConfig(n=4096, m=16384, num_small=NUM_SMALL)
    if executor != "serial":
        config = config.with_executor(executor, workers=workers)
    cluster = Cluster(config, rng=random.Random(7))
    chunks = [EDGES[i::NUM_SMALL] for i in range(NUM_SMALL)]
    for machine, chunk in zip(cluster.smalls, chunks):
        block = ingest_rows(chunk)
        machine.put("e", block if block is not None else list(chunk))
    start = time.perf_counter()
    sample_sort(cluster, "e", key=(0, 1, 2))
    elapsed = time.perf_counter() - start
    datasets = {}
    for machine in cluster.smalls:
        data = machine.get("e", [])
        rows = data.rows() if isinstance(data, EdgeBlock) else list(data)
        datasets[machine.machine_id] = rows
    ledger = [
        (r.index, r.note, r.total_words, r.max_sent, r.max_received, r.items)
        for r in cluster.ledger.records
    ]
    return elapsed, (datasets, ledger, cluster.ledger.memory_high_water)


def _huge_once(executor: str, workers: int):
    scenario = get_scenario("table1_connectivity_huge")
    runner = Runner(results_dir=None)
    with forced_executor(executor if executor != "serial" else "serial",
                         workers=workers):
        start = time.perf_counter()
        run = runner.run(scenario, quick=SMOKE)
        elapsed = time.perf_counter() - start
    edges = sum(row.get("m", 0) for row in run.rows)
    visible = [
        {k: v for k, v in row.items() if not k.startswith("_")}
        for row in run.rows
    ]
    return elapsed, edges, (visible, dict(run.totals))


def run_scaling():
    rows = []

    serial_fp = None
    serial_elapsed = None
    for executor, workers in LEGS:
        best, fingerprint = float("inf"), None
        for _ in range(REPEATS):
            elapsed, fingerprint = _sort_once(executor, workers)
            best = min(best, elapsed)
        if serial_fp is None:
            serial_fp, serial_elapsed = fingerprint, best
        else:
            assert fingerprint == serial_fp, (
                f"sort route differs under executor={executor} "
                f"workers={workers}"
            )
        rows.append({
            "route": "sort_columnar",
            "executor": executor,
            "workers": workers,
            "items": ITEMS,
            "items_per_sec": round(ITEMS / best),
            "speedup": round(serial_elapsed / best, 2),
        })

    huge_fp = None
    huge_serial = None
    for executor, workers in (("serial", 0), ("process", 4)):
        elapsed, edges, fingerprint = _huge_once(executor, workers)
        if huge_fp is None:
            huge_fp, huge_serial = fingerprint, elapsed
        else:
            assert fingerprint == huge_fp, (
                f"huge scenario differs under executor={executor}"
            )
        rows.append({
            "route": "huge_connectivity",
            "executor": executor,
            "workers": workers,
            "items": edges,
            "items_per_sec": round(edges / elapsed),
            "speedup": round(huge_serial / elapsed, 2),
        })
    shutdown_pools()  # bench epilogue: don't leave pools to atexit
    return rows


def test_executor_scaling(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    publish(
        "executor_scaling",
        f"Executor seam: items per second, {ITEMS}-item sort route "
        f"+ huge-tier scenario",
        rows,
        ["route", "executor", "workers", "items", "items_per_sec", "speedup"],
        persist=not SMOKE,
    )
    publish_perf(
        "executor_scaling",
        rows,
        params={
            "items": ITEMS,
            "num_small": NUM_SMALL,
            "repeats": REPEATS,
            "cpus": os.cpu_count() or 1,
        },
        persist=not SMOKE,
    )
    if not SMOKE and (os.cpu_count() or 1) >= 4:
        by_leg = {
            (r["executor"], r["workers"]): r
            for r in rows if r["route"] == "sort_columnar"
        }
        scaled = by_leg[("process", 4)]
        assert scaled["speedup"] >= 1.8, (
            f"process executor at 4 workers only {scaled['speedup']}x serial"
        )


if __name__ == "__main__":
    for row in run_scaling():
        print(row)
