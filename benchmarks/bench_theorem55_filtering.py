"""Theorem 5.5 filtering matching — a thin wrapper over the declarative scenario registry.

The sweep, measurements, and shape checks live in
``repro.experiments.registry`` under the scenario name ``theorem55_filtering``;
running this file publishes the text table and the JSON artifact that
``python -m repro report`` compiles into docs/REPRODUCTION.md.
"""

from _util import run_scenario_benchmark


def test_theorem55_filtering(benchmark):
    run_scenario_benchmark(benchmark, "theorem55_filtering")
