"""Thm 5.5 — filtering matching with a superlinear large machine.

Paper: O(1/f) rounds with large-machine memory n^{1+f} (Lattanzi et al.
filtering).  Sweep f and check the recursion depth tracks 1/f.
"""

import math
import random

from repro.core.matching import filtering_matching
from repro.graph import generators
from repro.graph.validation import is_maximal_matching
from repro.mpc import ModelConfig

from _util import publish

FS = (0.25, 0.5, 1.0)


def run_sweep() -> list[dict]:
    rng = random.Random(41)
    n, m = 70, 2000
    graph = generators.random_connected_graph(n, m, rng)
    rows = []
    for f in FS:
        config = ModelConfig.heterogeneous_superlinear(n=n, m=m, f=f)
        result = filtering_matching(graph, config=config, rng=random.Random(int(f * 10)))
        assert is_maximal_matching(graph, result.matching)
        rows.append(
            {
                "f": f,
                "levels": result.levels,
                "rounds": result.rounds,
                "theory~1/f": math.ceil(1.0 / f),
            }
        )
    return rows


def test_theorem55_filtering(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "theorem55_filtering",
        "Theorem 5.5: filtering matching, recursion depth ~ 1/f",
        rows,
        ["f", "levels", "rounds", "theory~1/f"],
    )
    levels = [row["levels"] for row in rows]
    assert levels == sorted(levels, reverse=True)
    rounds = [row["rounds"] for row in rows]
    assert rounds == sorted(rounds, reverse=True)
