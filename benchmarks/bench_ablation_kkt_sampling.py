"""KKT sampling-rate ablation (Lemma 3.2) — a thin wrapper over the declarative scenario registry.

The sweep, measurements, and shape checks live in
``repro.experiments.registry`` under the scenario name ``ablation_kkt_sampling``;
running this file publishes the text table and the JSON artifact that
``python -m repro report`` compiles into docs/REPRODUCTION.md.
"""

from _util import run_scenario_benchmark


def test_ablation_kkt_sampling(benchmark):
    run_scenario_benchmark(benchmark, "ablation_kkt_sampling")
