"""Ablation — the KKT sampling rate (Lemma 3.2).

The MST algorithm's second part hinges on the trade-off the sampling
lemma formalizes: sampling at rate p leaves ~n/p F-light edges, but the
sampled graph itself has ~pm edges — both must fit the large machine.
This ablation sweeps p and measures both sides of the trade, validating
the expectation bound that justifies the paper's choice p = n/m.
"""

import random

from repro.graph import generators
from repro.local.mst import f_light_edges, kruskal_edges

from _util import publish

PROBABILITIES = (0.05, 0.1, 0.25, 0.5)
TRIALS = 5


def run_sweep() -> list[dict]:
    rng = random.Random(47)
    n, m = 80, 1600
    graph = generators.random_connected_graph(n, m, rng).with_unique_weights(rng)
    rows = []
    for p in PROBABILITIES:
        sampled_sizes, light_counts = [], []
        for seed in range(TRIALS):
            local = random.Random(seed)
            sample = [e for e in graph.edges if local.random() < p]
            forest = kruskal_edges(n, sample)
            light = f_light_edges(n, forest, graph.edges)
            sampled_sizes.append(len(sample))
            light_counts.append(len(light))
        rows.append(
            {
                "p": p,
                "sampled_edges~pm": sum(sampled_sizes) / TRIALS,
                "pm": p * m,
                "f_light~n/p": sum(light_counts) / TRIALS,
                "n/p": n / p,
                "total_on_large": sum(sampled_sizes) / TRIALS
                + sum(light_counts) / TRIALS,
            }
        )
    return rows


def test_ablation_kkt_sampling(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish(
        "ablation_kkt_sampling",
        "Ablation / Lemma 3.2: sampled edges ~ pm vs F-light edges ~ n/p",
        rows,
        ["p", "sampled_edges~pm", "pm", "f_light~n/p", "n/p", "total_on_large"],
    )
    for row in rows:
        # KKT expectation bound with a generous constant.
        assert row["f_light~n/p"] <= 3 * row["n/p"]
    # The two curves move in opposite directions.
    assert rows[0]["sampled_edges~pm"] < rows[-1]["sampled_edges~pm"]
    assert rows[0]["f_light~n/p"] > rows[-1]["f_light~n/p"]
