"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package (the environment is offline)."""

from setuptools import setup

setup()
